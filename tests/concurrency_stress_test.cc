// Concurrency stress for the thread pool and the parallel SSAM payment
// fan-out. These tests exist primarily to give ThreadSanitizer real
// interleavings to examine (tools/verify.sh runs them under the `tsan`
// preset with pool sizes 1, 2, and hardware_concurrency); they also assert
// determinism — payments must be bit-for-bit identical for every thread
// count — so they are meaningful in plain and ASan builds too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "edge/topology.h"
#include "harness/experiments.h"
#include "market/mailbox.h"
#include "market/marketplace.h"

namespace ecrs {
namespace {

// Pool sizes the stress matrix covers: serial-ish, minimal contention, and
// whatever the hardware offers (deduplicated; hardware_concurrency may be 1).
std::vector<std::size_t> stress_pool_sizes() {
  std::vector<std::size_t> sizes{1, 2};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2) sizes.push_back(hw);
  return sizes;
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPoolStress, ConcurrentCallersDisjointSlots) {
  for (const std::size_t pool_size : stress_pool_sizes()) {
    thread_pool pool(pool_size);
    constexpr std::size_t kCallers = 4;
    constexpr std::size_t kItems = 257;
    std::vector<std::vector<int>> out(kCallers, std::vector<int>(kItems, 0));

    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (std::size_t c = 0; c < kCallers; ++c) {
      callers.emplace_back([&pool, &out, c] {
        for (int repeat = 0; repeat < 8; ++repeat) {
          pool.parallel_for(kItems,
                            [&out, c](std::size_t i) { ++out[c][i]; });
        }
      });
    }
    for (std::thread& t : callers) t.join();

    for (std::size_t c = 0; c < kCallers; ++c) {
      for (std::size_t i = 0; i < kItems; ++i) {
        ASSERT_EQ(out[c][i], 8) << "caller " << c << " slot " << i
                                << " (pool size " << pool_size << ")";
      }
    }
  }
}

TEST(ThreadPoolStress, SharedPoolHammeredFromManyThreads) {
  constexpr std::size_t kCallers = 6;
  std::atomic<std::size_t> total{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&total] {
      for (int repeat = 0; repeat < 16; ++repeat) {
        thread_pool::shared().parallel_for(
            64, [&total](std::size_t) {
              total.fetch_add(1, std::memory_order_relaxed);
            });
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(total.load(), kCallers * 16 * 64);
}

TEST(ThreadPoolStress, NestedParallelForMakesProgress) {
  for (const std::size_t pool_size : stress_pool_sizes()) {
    thread_pool pool(pool_size);
    std::atomic<std::size_t> leaves{0};
    pool.parallel_for(8, [&pool, &leaves](std::size_t) {
      pool.parallel_for(8, [&leaves](std::size_t) {
        leaves.fetch_add(1, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(leaves.load(), 64u) << "pool size " << pool_size;
  }
}

TEST(ThreadPoolStress, ExceptionUnderContentionLeavesPoolUsable) {
  for (const std::size_t pool_size : stress_pool_sizes()) {
    thread_pool pool(pool_size);
    for (int repeat = 0; repeat < 4; ++repeat) {
      EXPECT_THROW(
          pool.parallel_for(128,
                            [](std::size_t i) {
                              if (i == 57) ECRS_CHECK_MSG(false, "boom");
                            }),
          check_error);
      // The pool must survive the unwound range and keep serving work.
      std::atomic<std::size_t> done{0};
      pool.parallel_for(32, [&done](std::size_t) {
        done.fetch_add(1, std::memory_order_relaxed);
      });
      ASSERT_EQ(done.load(), 32u);
    }
  }
}

TEST(ThreadPoolStress, ConstructDestroyChurn) {
  for (int repeat = 0; repeat < 16; ++repeat) {
    thread_pool pool(1 + static_cast<std::size_t>(repeat % 3));
    std::atomic<std::size_t> done{0};
    pool.parallel_for(16, [&done](std::size_t) {
      done.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(done.load(), 16u);
  }
}

TEST(ThreadPoolStress, MaxWorkersCapRespectedUnderChurn) {
  // Hammer the max_workers cap: many concurrent callers, each asking the
  // shared pool for a different (small) cap. Observed concurrency per call
  // must never exceed the cap (+1 for the participating caller is already
  // inside the cap's contract: cap counts workers incl. the caller).
  constexpr std::size_t kCallers = 4;
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  std::atomic<bool> violated{false};
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([c, &violated] {
      const std::size_t cap = 1 + c % 3;
      std::atomic<std::size_t> inside{0};
      for (int repeat = 0; repeat < 8; ++repeat) {
        thread_pool::shared().parallel_for(
            97,
            [&inside, &violated, cap](std::size_t) {
              const std::size_t now =
                  inside.fetch_add(1, std::memory_order_acq_rel) + 1;
              if (now > cap) violated.store(true, std::memory_order_relaxed);
              inside.fetch_sub(1, std::memory_order_acq_rel);
            },
            cap);
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_FALSE(violated.load());
}

// ------------------------------------------------------------ sweep runner

TEST(SweepRunnerStress, ConcurrentSweepsProduceIdenticalTables) {
  // Several whole figure sweeps in flight at once, all drawing cells and
  // payment probes from the one shared pool. Every caller must reproduce
  // the serial table byte-for-byte.
  harness::sweep_config serial_cfg;
  serial_cfg.trials = 2;
  serial_cfg.seed = 5;
  serial_cfg.demanders = 3;
  serial_cfg.threads = 1;
  const std::string expected =
      harness::fig3a_ssam_ratio(serial_cfg, {4, 6}).to_csv();

  constexpr std::size_t kCallers = 3;
  std::vector<std::string> tables(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&tables, c] {
      harness::sweep_config cfg;
      cfg.trials = 2;
      cfg.seed = 5;
      cfg.demanders = 3;
      cfg.threads = 0;  // shared pool
      tables[c] = harness::fig3a_ssam_ratio(cfg, {4, 6}).to_csv();
    });
  }
  for (std::thread& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(tables[c], expected) << "caller " << c;
  }
}

TEST(SweepRunnerStress, RepeatedParallelSweepsStayDeterministic) {
  // Back-to-back parallel sweeps reuse pooled scratch workspaces in
  // scheduler-dependent order; the tables must not care.
  harness::sweep_config cfg;
  cfg.trials = 3;
  cfg.seed = 11;
  cfg.demanders = 3;
  cfg.threads = 0;
  const std::string first = harness::fig6a_rounds_bids(cfg, {2}, {1, 2}, 5)
                                .to_csv();
  for (int repeat = 0; repeat < 4; ++repeat) {
    EXPECT_EQ(harness::fig6a_rounds_bids(cfg, {2}, {1, 2}, 5).to_csv(), first)
        << "repeat " << repeat;
  }
}

// ----------------------------------------------------- SSAM payment fan-out

auction::single_stage_instance stress_instance(std::uint64_t seed) {
  auction::instance_config config;
  config.sellers = 30;
  config.demanders = 5;
  config.bids_per_seller = 2;
  rng gen(seed);
  return auction::random_instance(config, gen);
}

TEST(SsamConcurrencyStress, PaymentsIdenticalForEveryThreadCount) {
  const auto instance = stress_instance(0xec25);

  auction::ssam_options serial;
  serial.rule = auction::payment_rule::critical_value;
  serial.payment_threads = 1;
  const auto reference = run_ssam(instance, serial);
  ASSERT_TRUE(reference.feasible);
  ASSERT_FALSE(reference.winners.empty());

  std::vector<std::size_t> thread_counts = stress_pool_sizes();
  thread_counts.push_back(0);  // the shared process-wide pool
  for (const std::size_t threads : thread_counts) {
    auction::ssam_options options = serial;
    options.payment_threads = threads;
    const auto result = run_ssam(instance, options);
    ASSERT_EQ(result.winners.size(), reference.winners.size());
    for (std::size_t pos = 0; pos < result.winners.size(); ++pos) {
      EXPECT_EQ(result.winners[pos].bid_index,
                reference.winners[pos].bid_index);
      // Payments are pure probes writing disjoint slots: bit-for-bit equal
      // regardless of the worker count.
      EXPECT_EQ(result.winners[pos].payment, reference.winners[pos].payment)
          << "winner " << pos << " with payment_threads = " << threads;
    }
  }
}

TEST(SsamConcurrencyStress, ConcurrentAuctionsOnSharedPool) {
  // Many full mechanisms in flight at once, all fanning their payment
  // probes out over the one shared pool — the contention pattern a
  // multi-tenant platform produces.
  constexpr std::size_t kCallers = 4;
  const auto instance = stress_instance(0xec52);

  auction::ssam_options serial;
  serial.rule = auction::payment_rule::critical_value;
  serial.payment_threads = 1;
  const auto reference = run_ssam(instance, serial);

  std::vector<auction::ssam_result> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&instance, &results, c] {
      auction::ssam_options options;
      options.rule = auction::payment_rule::critical_value;
      options.payment_threads = 0;  // shared pool
      results[c] = run_ssam(instance, options);
    });
  }
  for (std::thread& t : callers) t.join();

  for (std::size_t c = 0; c < kCallers; ++c) {
    ASSERT_EQ(results[c].winners.size(), reference.winners.size());
    for (std::size_t pos = 0; pos < results[c].winners.size(); ++pos) {
      EXPECT_EQ(results[c].winners[pos].bid_index,
                reference.winners[pos].bid_index);
      EXPECT_EQ(results[c].winners[pos].payment,
                reference.winners[pos].payment);
    }
    auction::audit_options audit;
    EXPECT_NO_THROW(audit_or_throw(instance, results[c], audit));
  }
}

TEST(SsamConcurrencyStress, ThreadArenaReusedAcrossConcurrentAuctions) {
  // The per-winner probe slots are carved from each calling thread's bump
  // arena (common/arena.h). Several threads each running MANY back-to-back
  // auctions stress the arena scope rewind/reuse cycle and — under TSan —
  // confirm no arena state is shared across threads. Each thread also
  // interleaves two scratches, the sweep-runner pattern where a workspace
  // migrates between cells while the arena stays thread-local.
  constexpr std::size_t kCallers = 4;
  const auto instance = stress_instance(0xa12e);

  auction::ssam_options serial;
  serial.rule = auction::payment_rule::critical_value;
  serial.payment_threads = 1;
  const auto reference = run_ssam(instance, serial);
  ASSERT_FALSE(reference.winners.empty());

  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  std::atomic<bool> mismatch{false};
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&instance, &reference, &mismatch] {
      auction::ssam_scratch scratch_a, scratch_b;
      auction::ssam_options options;
      options.rule = auction::payment_rule::critical_value;
      options.payment_threads = 1;
      auction::ssam_result out;
      for (int repeat = 0; repeat < 12; ++repeat) {
        auction::ssam_scratch* scratch =
            (repeat % 2 == 0) ? &scratch_a : &scratch_b;
        run_ssam(instance, options, scratch, out);
        if (out.winners.size() != reference.winners.size()) {
          mismatch.store(true, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t pos = 0; pos < out.winners.size(); ++pos) {
          if (out.winners[pos].bid_index != reference.winners[pos].bid_index ||
              out.winners[pos].payment != reference.winners[pos].payment) {
            mismatch.store(true, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_FALSE(mismatch.load());
}

TEST(SsamConcurrencyStress, BudgetedParallelPaymentsStayAudited) {
  // The budget re-verification path (drop trailing winners) runs after the
  // parallel fan-out; under TSan this exercises the join edge between the
  // workers and the re-check.
  const auto instance = stress_instance(0xb4d9);
  auction::ssam_options unbounded;
  unbounded.rule = auction::payment_rule::critical_value;
  const auto full = run_ssam(instance, unbounded);
  ASSERT_FALSE(full.winners.empty());

  auction::ssam_options bounded = unbounded;
  bounded.payment_budget = 0.6 * full.total_payment;
  const auto result = run_ssam(instance, bounded);
  EXPECT_LE(result.total_payment, bounded.payment_budget + 1e-9);
  auction::audit_options audit;
  audit.payment_budget = bounded.payment_budget;
  EXPECT_NO_THROW(audit_or_throw(instance, result, audit));
}

// ------------------------------------------------- marketplace + mailbox

// Shard/mailbox churn: many regions post into their own pre-sized mailbox
// slots from pool workers while the driver drains between phases. The
// mailbox's safety claim is exactly this pattern (disjoint slot writes
// under the fan-out, serial drain after the join), so this is the case
// TSan must see; the assertions double as the determinism check — the
// drain order is a pure function of what was posted where.
TEST(MarketStress, MailboxChurnUnderShardFanOut) {
  constexpr std::uint32_t kRegions = 12;
  constexpr std::size_t kMessagesPerRegion = 64;
  for (const std::size_t pool_size : stress_pool_sizes()) {
    thread_pool pool(pool_size);
    market::post_office po(kRegions);
    for (int round = 0; round < 4; ++round) {
      pool.parallel_for(kRegions, [&po](std::size_t r) {
        for (std::size_t i = 0; i < kMessagesPerRegion; ++i) {
          market::message m;
          m.type = market::message::kind::spill_request;
          m.from = static_cast<std::uint32_t>(r);  // own slot only
          m.to = po.coordinator();
          m.seller = static_cast<std::uint32_t>(i);
          po.post(std::move(m));
        }
      });
      std::uint32_t expect_from = 0;
      std::uint32_t expect_seq = 0;
      std::size_t delivered = 0;
      po.drain([&](const market::message& m) {
        EXPECT_EQ(m.from, expect_from);
        EXPECT_EQ(m.seller, expect_seq);
        ++delivered;
        if (++expect_seq == kMessagesPerRegion) {
          expect_seq = 0;
          ++expect_from;
        }
      });
      EXPECT_EQ(delivered, kRegions * kMessagesPerRegion);
      EXPECT_EQ(po.pending(), 0u);
    }
  }
}

// Whole marketplace horizons raced across pool sizes: every run must
// produce the same winner/payment stream the serial shard composition
// does. Gives TSan the real shard fan-out (sessions, mailbox, spillover)
// instead of a synthetic loop.
TEST(MarketStress, MarketplaceHorizonDeterministicAcrossPools) {
  auction::online_config stage;
  stage.stage.sellers = 5;
  stage.stage.demanders = 3;
  stage.rounds = 3;
  auction::regional_config regional;
  regional.regions = 6;
  regional.demand_scale = 1.3;
  rng gen(0xc0de);
  const auto input =
      auction::random_regional_online_instance(stage, regional, gen);

  const auto run = [&](std::size_t threads) {
    market::marketplace_options options;
    options.threads = threads;
    options.shard.session.stage.payment_threads = 1;
    std::vector<std::vector<auction::seller_profile>> sellers;
    for (const auto& region : input.regions) sellers.push_back(region.sellers);
    edge::topology topo =
        edge::topology::ring(static_cast<std::uint32_t>(regional.regions));
    market::marketplace mkt(topo, std::move(sellers), options);
    std::vector<std::pair<std::size_t, double>> stream;
    market::marketplace_round result;
    auction::regional_instance round;
    round.regions.resize(regional.regions);
    for (std::size_t t = 0; t < stage.rounds; ++t) {
      for (std::size_t r = 0; r < regional.regions; ++r) {
        round.regions[r] = input.regions[r].rounds[t];
      }
      mkt.run_round(round, result);
      for (const auto& shard : result.shards) {
        for (std::size_t w = 0; w < shard.outcome.winner_bids.size(); ++w) {
          stream.emplace_back(shard.outcome.winner_bids[w],
                              shard.outcome.payments[w]);
        }
      }
      for (const auto& award : result.spillover.awards) {
        stream.emplace_back(award.bid_index, award.payment);
      }
    }
    return stream;
  };

  const auto reference = run(1);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t pool_size : stress_pool_sizes()) {
    EXPECT_EQ(run(pool_size), reference) << "pool size " << pool_size;
  }
}

}  // namespace
}  // namespace ecrs
