// Unit tests for the Analytic Hierarchy Process module.
#include <gtest/gtest.h>

#include "ahp/ahp.h"
#include "common/check.h"

namespace ecrs::ahp {
namespace {

TEST(ComparisonMatrix, StartsAsIdentityOfOnes) {
  comparison_matrix m(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), 1.0);
    }
  }
  EXPECT_TRUE(m.is_reciprocal());
}

TEST(ComparisonMatrix, SetJudgmentMaintainsReciprocal) {
  comparison_matrix m(3);
  m.set_judgment(0, 1, 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.25);
  EXPECT_TRUE(m.is_reciprocal());
}

TEST(ComparisonMatrix, RejectsDiagonalAndNonPositive) {
  comparison_matrix m(2);
  EXPECT_THROW(m.set_judgment(0, 0, 2.0), check_error);
  EXPECT_THROW(m.set_judgment(0, 1, 0.0), check_error);
  EXPECT_THROW(m.set_judgment(0, 1, -1.0), check_error);
}

TEST(ComparisonMatrix, RejectsZeroSize) {
  EXPECT_THROW(comparison_matrix(0), check_error);
}

TEST(DeriveWeights, UniformMatrixGivesEqualWeights) {
  comparison_matrix m(4);
  const ahp_result r = derive_weights(m);
  for (double w : r.weights) EXPECT_NEAR(w, 0.25, 1e-9);
  EXPECT_NEAR(r.lambda_max, 4.0, 1e-9);
  EXPECT_NEAR(r.consistency_index, 0.0, 1e-9);
  EXPECT_NEAR(r.consistency_ratio, 0.0, 1e-9);
}

TEST(DeriveWeights, ConsistentRatioMatrixRecoversExactWeights) {
  // Weights (2/7, 1/7, 4/7): matrix a_ij = w_i / w_j is perfectly
  // consistent, so AHP must recover the weights exactly.
  comparison_matrix m(3);
  m.set_judgment(0, 1, 2.0);        // 2/7 over 1/7
  m.set_judgment(0, 2, 0.5);        // 2/7 over 4/7
  m.set_judgment(1, 2, 0.25);       // 1/7 over 4/7
  const ahp_result r = derive_weights(m);
  EXPECT_NEAR(r.weights[0], 2.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.weights[1], 1.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.weights[2], 4.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.consistency_ratio, 0.0, 1e-9);
}

TEST(DeriveWeights, WeightsSumToOne) {
  comparison_matrix m(3);
  m.set_judgment(0, 1, 3.0);
  m.set_judgment(1, 2, 5.0);
  m.set_judgment(0, 2, 7.0);
  const ahp_result r = derive_weights(m);
  double sum = 0.0;
  for (double w : r.weights) {
    EXPECT_GT(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(DeriveWeights, InconsistentJudgmentsAreFlagged) {
  // Saaty's classic: strongly intransitive judgments inflate λmax.
  comparison_matrix m(3);
  m.set_judgment(0, 1, 9.0);
  m.set_judgment(1, 2, 9.0);
  m.set_judgment(0, 2, 1.0 / 9.0);  // wildly inconsistent
  const ahp_result r = derive_weights(m);
  EXPECT_GT(r.lambda_max, 3.0);
  EXPECT_GT(r.consistency_ratio, 0.10);  // fails Saaty's 10% rule
}

TEST(DeriveWeights, MildlyInconsistentStaysBelowThreshold) {
  comparison_matrix m(3);
  m.set_judgment(0, 1, 2.0);
  m.set_judgment(1, 2, 2.0);
  m.set_judgment(0, 2, 3.0);  // perfectly consistent would be 4
  const ahp_result r = derive_weights(m);
  EXPECT_LT(r.consistency_ratio, 0.10);
}

TEST(DeriveWeights, StrongerCriterionGetsLargerWeight) {
  comparison_matrix m(3);
  m.set_judgment(2, 0, 5.0);
  m.set_judgment(2, 1, 5.0);
  const ahp_result r = derive_weights(m);
  EXPECT_GT(r.weights[2], r.weights[0]);
  EXPECT_GT(r.weights[2], r.weights[1]);
}

TEST(RandomConsistencyIndex, SaatyTable) {
  EXPECT_DOUBLE_EQ(random_consistency_index(1), 0.0);
  EXPECT_DOUBLE_EQ(random_consistency_index(2), 0.0);
  EXPECT_DOUBLE_EQ(random_consistency_index(3), 0.58);
  EXPECT_DOUBLE_EQ(random_consistency_index(9), 1.45);
  // Orders above 15 reuse the last published value.
  EXPECT_DOUBLE_EQ(random_consistency_index(40),
                   random_consistency_index(15));
}

TEST(DefaultDemandJudgments, MatchesPaperOrdering) {
  const comparison_matrix m = default_demand_judgments();
  const ahp_result r = derive_weights(m);
  ASSERT_EQ(r.weights.size(), 3u);
  // Request rate (index 2) dominates, waiting time (0) second.
  EXPECT_GT(r.weights[2], r.weights[0]);
  EXPECT_GT(r.weights[0], r.weights[1]);
  EXPECT_NEAR(r.weights[0], 2.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.weights[1], 1.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.weights[2], 4.0 / 7.0, 1e-9);
  EXPECT_NEAR(r.consistency_ratio, 0.0, 1e-9);
}

}  // namespace
}  // namespace ecrs::ahp
