// Tests for the algorithmic variants: lazy-greedy selection and the
// local-search improvement heuristic.
#include <gtest/gtest.h>

#include <algorithm>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/local_search.h"
#include "auction/rounding.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

// ------------------------------------------------------------- lazy greedy

class LazyGreedySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LazyGreedySweep, MatchesEagerGreedyExactly) {
  rng gen(GetParam() * 7919 + 3);
  instance_config cfg;
  cfg.sellers = 3 + static_cast<std::size_t>(gen.uniform_int(0, 25));
  cfg.demanders = 1 + static_cast<std::size_t>(gen.uniform_int(0, 5));
  cfg.bids_per_seller = 1 + static_cast<std::size_t>(gen.uniform_int(0, 3));
  const auto inst = random_instance(cfg, gen);
  const auto eager = eager_greedy_selection(inst);
  const auto lazy = lazy_greedy_selection(inst);
  EXPECT_EQ(lazy, eager);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LazyGreedySweep,
                         ::testing::Range<std::uint64_t>(1, 41));

TEST(LazyGreedy, HandlesTiesLikeEager) {
  // Three identical bids: both variants must pick the lowest index.
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 10.0),
               make_bid(2, {0}, 4, 10.0)};
  EXPECT_EQ(lazy_greedy_selection(inst), eager_greedy_selection(inst));
  EXPECT_EQ(lazy_greedy_selection(inst), (std::vector<std::size_t>{0}));
}

TEST(LazyGreedy, EmptyRequirementsSelectNothing) {
  single_stage_instance inst;
  inst.requirements = {0};
  inst.bids = {make_bid(0, {0}, 1, 1.0)};
  EXPECT_TRUE(lazy_greedy_selection(inst).empty());
}

TEST(LazyGreedy, StopsOnUnsatisfiableInstances) {
  single_stage_instance inst;
  inst.requirements = {100};
  inst.bids = {make_bid(0, {0}, 2, 1.0), make_bid(1, {0}, 2, 2.0)};
  const auto lazy = lazy_greedy_selection(inst);
  EXPECT_EQ(lazy, eager_greedy_selection(inst));
  EXPECT_EQ(lazy.size(), 2u);  // takes everything useful, then stops
}

TEST(LazyGreedy, LargeInstanceAgreesWithEager) {
  rng gen(99);
  instance_config cfg;
  cfg.sellers = 300;
  cfg.demanders = 8;
  cfg.bids_per_seller = 2;
  const auto inst = random_instance(cfg, gen);
  EXPECT_EQ(lazy_greedy_selection(inst), eager_greedy_selection(inst));
}

// ------------------------------------------------------- early-exit probes

// Reference verdict without any early exit or price-override machinery: set
// the probed bid's price in a copy of the instance and check membership in
// the plain greedy selection.
bool wins_by_reference(const single_stage_instance& inst, std::size_t idx,
                       double report) {
  single_stage_instance modified = inst;
  modified.bids[idx].price = report;
  const auto winners = greedy_selection(modified);
  return std::find(winners.begin(), winners.end(), idx) != winners.end();
}

class ProbeEarlyExitSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProbeEarlyExitSweep, VerdictMatchesFullReplay) {
  rng gen(GetParam() * 104729 + 17);
  instance_config cfg;
  cfg.sellers = 3 + static_cast<std::size_t>(gen.uniform_int(0, 12));
  cfg.demanders = 1 + static_cast<std::size_t>(gen.uniform_int(0, 4));
  cfg.bids_per_seller = 1 + static_cast<std::size_t>(gen.uniform_int(0, 2));
  const auto inst = random_instance(cfg, gen);
  for (std::size_t idx = 0; idx < inst.bids.size(); ++idx) {
    // Probe below, at, and well above the bid's own price; early exit must
    // never flip a verdict relative to replaying the whole auction.
    for (const double factor : {0.25, 1.0, 4.0, 64.0}) {
      const double report = inst.bids[idx].price * factor;
      EXPECT_EQ(wins_with_price(inst, idx, report),
                wins_by_reference(inst, idx, report))
          << "bid " << idx << " report " << report;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProbeEarlyExitSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

// ------------------------------------------------------------ local search

TEST(LocalSearch, DropsRedundantWinners) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 5.0), make_bid(1, {0}, 4, 6.0)};
  // A deliberately wasteful initial selection.
  const auto res = improve_selection(inst, {0, 1});
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.winners.size(), 1u);
  EXPECT_DOUBLE_EQ(res.cost, 5.0);
  EXPECT_GE(res.iterations, 1u);
}

TEST(LocalSearch, SwapsToCheaperBidOfSameSeller) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 9.0, 0), make_bid(0, {0}, 4, 6.0, 1)};
  const auto res = improve_selection(inst, {0});
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.winners, (std::vector<std::size_t>{1}));
  EXPECT_DOUBLE_EQ(res.cost, 6.0);
}

TEST(LocalSearch, ReplacesWithCheaperSeller) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 12.0), make_bid(1, {0}, 4, 7.0)};
  const auto res = improve_selection(inst, {0});
  ASSERT_TRUE(res.feasible);
  EXPECT_EQ(res.winners, (std::vector<std::size_t>{1}));
}

TEST(LocalSearch, InfeasibleInitialReturnedAsIs) {
  single_stage_instance inst;
  inst.requirements = {100};
  inst.bids = {make_bid(0, {0}, 2, 1.0)};
  const auto res = improve_selection(inst);  // greedy can't cover either
  EXPECT_FALSE(res.feasible);
}

TEST(LocalSearch, RejectsDuplicateSellerInInitial) {
  single_stage_instance inst;
  inst.requirements = {2};
  inst.bids = {make_bid(0, {0}, 2, 1.0, 0), make_bid(0, {0}, 2, 2.0, 1)};
  EXPECT_THROW(improve_selection(inst, {0, 1}), check_error);
}

class LocalSearchSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchSweep, NeverWorseThanGreedyNeverBetterThanExact) {
  rng gen(GetParam() * 131 + 11);
  instance_config cfg;
  cfg.sellers = 9;
  cfg.demanders = 3;
  cfg.bids_per_seller = 2;
  const auto inst = random_instance(cfg, gen);
  double greedy_cost = 0.0;
  for (std::size_t idx : greedy_selection(inst)) {
    greedy_cost += inst.bids[idx].price;
  }
  const auto improved = improve_selection(inst);
  ASSERT_TRUE(improved.feasible);
  EXPECT_LE(improved.cost, greedy_cost + 1e-9);
  EXPECT_TRUE(selection_feasible(
      inst, std::vector<std::size_t>(improved.winners.begin(),
                                     improved.winners.end())));
  const auto opt = solve_exact(inst, 400000);
  if (opt.exact && opt.feasible) {
    EXPECT_GE(improved.cost, opt.cost - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

// --------------------------------------------------------- LP rounding

class RoundingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundingSweep, FeasibleAndBoundedByLp) {
  rng gen(GetParam() * 613 + 7);
  instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  cfg.bids_per_seller = 2;
  const auto inst = random_instance(cfg, gen);
  rng sample = gen.fork(1);
  const auto res = randomized_rounding(inst, sample);
  ASSERT_TRUE(res.feasible);
  EXPECT_TRUE(selection_feasible(inst, res.winners));
  // Never beats the fractional optimum.
  EXPECT_GE(res.social_cost, lp_bound(inst) - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingSweep,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Rounding, DeterministicGivenGenerator) {
  rng gen(3);
  instance_config cfg;
  cfg.sellers = 8;
  cfg.demanders = 2;
  const auto inst = random_instance(cfg, gen);
  rng a(77);
  rng b(77);
  const auto ra = randomized_rounding(inst, a);
  const auto rb = randomized_rounding(inst, b);
  EXPECT_EQ(ra.winners, rb.winners);
  EXPECT_DOUBLE_EQ(ra.social_cost, rb.social_cost);
}

TEST(Rounding, IntegralLpRoundsExactly) {
  // Two sellers, one clearly cheaper: the LP optimum is integral, so the
  // rounding recovers it.
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 20.0)};
  rng gen(5);
  const auto res = randomized_rounding(inst, gen);
  ASSERT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.social_cost, 10.0);
}

TEST(Rounding, GreedyCompletionGuaranteesFeasibility) {
  rng gen(11);
  instance_config cfg;
  cfg.sellers = 12;
  cfg.demanders = 4;
  const auto inst = random_instance(cfg, gen);
  rng sample = gen.fork(2);
  rounding_options opts;
  opts.repetitions = 1;  // a single sample often misses; completion saves it
  const auto res = randomized_rounding(inst, sample, opts);
  EXPECT_TRUE(res.feasible);
}

TEST(Rounding, RejectsZeroRepetitions) {
  single_stage_instance inst;
  inst.requirements = {0};
  rng gen(1);
  rounding_options opts;
  opts.repetitions = 0;
  EXPECT_THROW(randomized_rounding(inst, gen, opts), check_error);
}

}  // namespace
}  // namespace ecrs::auction
