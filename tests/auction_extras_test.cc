// Tests for the auction extensions: buyer-side settlement (Definition 5),
// instance serialization, and the budgeted SSAM variant (§IV's "until the
// total budget W is depleted").
#include <gtest/gtest.h>

#include <sstream>

#include "auction/instance_gen.h"
#include "auction/io.h"
#include "auction/settlement.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

// -------------------------------------------------------------- settlement

TEST(Settlement, ChargesCoverPaymentsExactlyWithZeroMarkup) {
  single_stage_instance inst;
  inst.requirements = {4, 2};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {1}, 2, 6.0),
               make_bid(2, {0, 1}, 4, 30.0)};
  const auto res = run_ssam(inst);
  ASSERT_TRUE(res.feasible);
  const auto s = settle_round(inst, res, 0.0);
  EXPECT_NEAR(s.total_charged, s.total_payment, 1e-9);
  EXPECT_NEAR(s.platform_balance, 0.0, 1e-9);
  EXPECT_TRUE(s.no_economic_loss());
}

TEST(Settlement, MarkupYieldsPlatformProfit) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  const auto res = run_ssam(inst);
  const auto s = settle_round(inst, res, 0.25);
  EXPECT_NEAR(s.total_charged, 1.25 * s.total_payment, 1e-9);
  EXPECT_NEAR(s.platform_balance, 0.25 * s.total_payment, 1e-9);
  EXPECT_TRUE(s.no_economic_loss());
}

TEST(Settlement, ChargesProportionalToUnitsReceived) {
  single_stage_instance inst;
  inst.requirements = {6, 2};
  inst.bids = {make_bid(0, {0}, 6, 12.0), make_bid(1, {1}, 2, 6.0),
               make_bid(2, {0, 1}, 4, 50.0)};
  const auto res = run_ssam(inst);
  ASSERT_TRUE(res.feasible);
  const auto s = settle_round(inst, res, 0.0);
  ASSERT_EQ(s.received.size(), 2u);
  EXPECT_EQ(s.received[0], 6);
  EXPECT_EQ(s.received[1], 2);
  // Demander 0 got 3x the units, so pays 3x the charge.
  EXPECT_NEAR(s.charges[0], 3.0 * s.charges[1], 1e-9);
}

TEST(Settlement, EmptyOutcomeChargesNothing) {
  single_stage_instance inst;
  inst.requirements = {0};
  const auto s = settle_round(inst, ssam_result{}, 0.0);
  EXPECT_DOUBLE_EQ(s.total_charged, 0.0);
  EXPECT_DOUBLE_EQ(s.total_payment, 0.0);
  EXPECT_TRUE(s.no_economic_loss());
}

TEST(Settlement, RejectsNegativeMarkup) {
  single_stage_instance inst;
  inst.requirements = {0};
  EXPECT_THROW(settle_round(inst, ssam_result{}, -0.1), check_error);
}

TEST(Settlement, OverDeliveryNotBilled) {
  // A winning bid supplying more than the remaining need only bills the
  // useful units.
  single_stage_instance inst;
  inst.requirements = {3};
  inst.bids = {make_bid(0, {0}, 10, 5.0)};
  const auto res = run_ssam(inst);
  const auto s = settle_round(inst, res, 0.0);
  EXPECT_EQ(s.received[0], 3);
}

// ---------------------------------------------------------------------- io

TEST(InstanceIo, RoundTripsBitIdentical) {
  rng gen(3);
  instance_config cfg;
  cfg.sellers = 9;
  cfg.demanders = 4;
  const auto original = random_instance(cfg, gen);
  std::stringstream ss;
  write_instance(ss, original);
  const auto restored = read_instance(ss);
  ASSERT_EQ(restored.requirements, original.requirements);
  ASSERT_EQ(restored.bids.size(), original.bids.size());
  for (std::size_t i = 0; i < original.bids.size(); ++i) {
    EXPECT_EQ(restored.bids[i].seller, original.bids[i].seller);
    EXPECT_EQ(restored.bids[i].index, original.bids[i].index);
    EXPECT_EQ(restored.bids[i].amount, original.bids[i].amount);
    EXPECT_EQ(restored.bids[i].coverage, original.bids[i].coverage);
    // Bit-identical, not just approximately equal (hexfloat round trip).
    EXPECT_EQ(restored.bids[i].price, original.bids[i].price);
  }
}

TEST(InstanceIo, OnlineRoundTrip) {
  rng gen(5);
  online_config cfg;
  cfg.stage.sellers = 6;
  cfg.stage.demanders = 2;
  cfg.rounds = 4;
  const auto original = random_online_instance(cfg, gen);
  std::stringstream ss;
  write_online_instance(ss, original);
  const auto restored = read_online_instance(ss);
  ASSERT_EQ(restored.rounds.size(), original.rounds.size());
  ASSERT_EQ(restored.sellers.size(), original.sellers.size());
  for (std::size_t s = 0; s < original.sellers.size(); ++s) {
    EXPECT_EQ(restored.sellers[s].capacity, original.sellers[s].capacity);
    EXPECT_EQ(restored.sellers[s].t_arrive, original.sellers[s].t_arrive);
    EXPECT_EQ(restored.sellers[s].t_depart, original.sellers[s].t_depart);
  }
  for (std::size_t t = 0; t < original.rounds.size(); ++t) {
    EXPECT_EQ(restored.rounds[t].requirements, original.rounds[t].requirements);
    EXPECT_EQ(restored.rounds[t].bids.size(), original.rounds[t].bids.size());
  }
}

TEST(InstanceIo, RejectsWrongHeader) {
  std::stringstream ss("not-a-header\n");
  EXPECT_THROW(read_instance(ss), check_error);
}

TEST(InstanceIo, RejectsTruncatedInput) {
  std::stringstream ss("ecrs-instance v1\nrequirements 2 5\n");  // one missing
  EXPECT_THROW(read_instance(ss), check_error);
}

TEST(InstanceIo, RejectsMalformedPrice) {
  std::stringstream ss(
      "ecrs-instance v1\nrequirements 1 3\nbids 1\n0 0 2 notaprice 1 0\n");
  EXPECT_THROW(read_instance(ss), check_error);
}

TEST(InstanceIo, FileRoundTrip) {
  rng gen(7);
  instance_config cfg;
  cfg.sellers = 4;
  cfg.demanders = 2;
  const auto original = random_instance(cfg, gen);
  const std::string path = testing::TempDir() + "/ecrs_instance_test.txt";
  write_instance_file(path, original);
  const auto restored = read_instance_file(path);
  EXPECT_EQ(restored.requirements, original.requirements);
  EXPECT_THROW(read_instance_file("/nonexistent/inst.txt"), check_error);
}

TEST(InstanceIo, ReplayedInstanceGivesIdenticalAuctionOutcome) {
  rng gen(11);
  instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  const auto original = random_instance(cfg, gen);
  std::stringstream ss;
  write_instance(ss, original);
  const auto restored = read_instance(ss);
  const auto res_a = run_ssam(original);
  const auto res_b = run_ssam(restored);
  ASSERT_EQ(res_a.winners.size(), res_b.winners.size());
  for (std::size_t i = 0; i < res_a.winners.size(); ++i) {
    EXPECT_EQ(res_a.winners[i].bid_index, res_b.winners[i].bid_index);
    EXPECT_EQ(res_a.winners[i].payment, res_b.winners[i].payment);
  }
}

// ------------------------------------------------------------------ budget

TEST(BudgetedSsam, ZeroMeansUnlimited) {
  rng gen(13);
  instance_config cfg;
  cfg.sellers = 8;
  cfg.demanders = 2;
  const auto inst = random_instance(cfg, gen);
  ssam_options unlimited;  // payment_budget = 0
  const auto res = run_ssam(inst, unlimited);
  EXPECT_TRUE(res.feasible);
}

TEST(BudgetedSsam, TinyBudgetBuysNothing) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  ssam_options opts;
  opts.payment_budget = 5.0;  // below any payment
  const auto res = run_ssam(inst, opts);
  EXPECT_TRUE(res.winners.empty());
  EXPECT_FALSE(res.feasible);
}

TEST(BudgetedSsam, BudgetRespectedOnPartialPurchase) {
  single_stage_instance inst;
  inst.requirements = {8};
  inst.bids = {make_bid(0, {0}, 4, 8.0), make_bid(1, {0}, 4, 9.0),
               make_bid(2, {0}, 4, 20.0)};
  ssam_options opts;
  opts.payment_budget = 10.0;  // enough for the first winner only
  const auto res = run_ssam(inst, opts);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_LE(res.total_payment, 10.0 + 1e-9);
  EXPECT_FALSE(res.feasible);
}

TEST(BudgetedSsam, AmpleBudgetMatchesUnbudgeted) {
  rng gen(17);
  instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  const auto inst = random_instance(cfg, gen);
  ssam_options opts;
  opts.payment_budget = 1e9;
  const auto budgeted = run_ssam(inst, opts);
  const auto unbudgeted = run_ssam(inst);
  ASSERT_EQ(budgeted.winners.size(), unbudgeted.winners.size());
  EXPECT_DOUBLE_EQ(budgeted.social_cost, unbudgeted.social_cost);
}

TEST(BudgetedSsam, RejectsNegativeBudget) {
  single_stage_instance inst;
  inst.requirements = {0};
  ssam_options opts;
  opts.payment_budget = -1.0;
  EXPECT_THROW(run_ssam(inst, opts), check_error);
}

// The in-loop budget gate only sees runner-up ESTIMATES; under the
// critical-value rule the realized Myerson payment can be far larger. In
// this gadget the winner's at-selection runner-up is a cheap bid covering
// only part of its coverage (estimate 4 × 0.6 = 2.4) while the alternative
// that eventually binds the critical value is expensive (40).
single_stage_instance divergent_budget_instance() {
  single_stage_instance inst;
  inst.requirements = {2, 2};
  inst.bids = {make_bid(0, {0, 1}, 2, 2.0),  // wins everything, ratio 0.5
               make_bid(1, {0}, 2, 1.2),     // cheap runner-up, ratio 0.6
               make_bid(2, {1}, 2, 40.0)};   // pricey fallback, ratio 20
  return inst;
}

TEST(BudgetedSsam, RunnerUpEstimateUnderstatesCriticalPayment) {
  const auto inst = divergent_budget_instance();
  ssam_options critical;
  critical.rule = payment_rule::critical_value;
  const auto unbudgeted = run_ssam(inst, critical);
  ASSERT_EQ(unbudgeted.winners.size(), 1u);
  EXPECT_EQ(unbudgeted.winners[0].bid_index, 0u);
  // Bid 0 keeps winning until bid 2's ratio binds: 40/2 = p/2 at p = 40.
  EXPECT_NEAR(unbudgeted.winners[0].payment, 40.0, 1e-6);

  // The same winner's runner-up estimate — what the in-loop gate charges
  // against W — is only 2.4.
  ssam_options runner;
  runner.payment_budget = 10.0;
  const auto estimated = run_ssam(inst, runner);
  ASSERT_EQ(estimated.winners.size(), 1u);
  EXPECT_NEAR(estimated.total_payment, 2.4, 1e-9);
}

TEST(BudgetedSsam, CriticalPaymentsReverifiedAgainstBudget) {
  // Regression: with W = 10 the estimate (2.4) passes the in-loop gate but
  // the realized critical payment (40) violates the budget. Before the
  // re-verification pass this returned total_payment = 40 > W.
  const auto inst = divergent_budget_instance();
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  opts.payment_budget = 10.0;
  const auto res = run_ssam(inst, opts);
  EXPECT_EQ(res.budget_dropped, 1u);
  EXPECT_TRUE(res.winners.empty());
  EXPECT_DOUBLE_EQ(res.total_payment, 0.0);
  EXPECT_TRUE(res.unit_shares.empty());
  EXPECT_FALSE(res.feasible);
}

TEST(BudgetedSsam, DropsOnlyTrailingWinnersOnPartialOverrun) {
  // Two independent winners: a cheap one (critical payment 2) selected
  // first and the divergent gadget (critical payment 40) selected second.
  // With W = 30 only the trailing winner must go.
  single_stage_instance inst;
  inst.requirements = {2, 2, 2};
  inst.bids = {make_bid(0, {2}, 2, 0.8),     // ratio 0.4, selected first
               make_bid(1, {0, 1}, 2, 2.0),  // ratio 0.5, selected second
               make_bid(2, {0}, 2, 1.2),     // gadget runner-up
               make_bid(3, {2}, 2, 2.0),     // binds bid 0's critical value
               make_bid(4, {1}, 2, 40.0)};   // binds bid 1's critical value
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  opts.payment_budget = 30.0;
  const auto res = run_ssam(inst, opts);
  EXPECT_EQ(res.budget_dropped, 1u);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0].bid_index, 0u);
  EXPECT_NEAR(res.total_payment, 2.0, 1e-6);
  EXPECT_LE(res.total_payment, opts.payment_budget + 1e-9);
  EXPECT_FALSE(res.feasible);  // demanders 0 and 1 lost their coverage
}

class BudgetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BudgetSweep, PaymentsNeverExceedBudget) {
  rng gen(GetParam());
  instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  const auto inst = random_instance(cfg, gen);
  const double budget = gen.uniform_real(10.0, 200.0);
  ssam_options opts;
  opts.payment_budget = budget;
  const auto res = run_ssam(inst, opts);
  EXPECT_LE(res.total_payment, budget + 1e-9);
}

TEST_P(BudgetSweep, CriticalPaymentsNeverExceedBudget) {
  rng gen(GetParam() * 29 + 5);
  instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  const auto inst = random_instance(cfg, gen);
  const double budget = gen.uniform_real(10.0, 200.0);
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  opts.payment_budget = budget;
  const auto res = run_ssam(inst, opts);
  EXPECT_LE(res.total_payment, budget + 1e-9);
  // Dropping a winner never leaves a cheaper-than-payment total behind:
  // every surviving payment is still at least the asking price.
  for (const winning_bid& w : res.winners) {
    EXPECT_GE(w.payment, inst.bids[w.bid_index].price - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BudgetSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace ecrs::auction
