// Unit and property tests for the two-phase simplex solver.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/rng.h"
#include "lp/simplex.h"

namespace ecrs::lp {
namespace {

TEST(Simplex, SolvesTextbookMinimization) {
  // min 2x + 3y  s.t. x + y >= 4, x >= 1, y >= 0  -> x = 3? No:
  // cheapest fills with x: x = 4, y = 0, cost 8; the x >= 1 row is slack.
  model m;
  const auto x = m.add_variable(2.0);
  const auto y = m.add_variable(3.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, row_sense::ge, 4.0);
  m.add_constraint({{x, 1.0}}, row_sense::ge, 1.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 8.0, 1e-8);
  EXPECT_NEAR(s.x[x], 4.0, 1e-8);
  EXPECT_NEAR(s.x[y], 0.0, 1e-8);
}

TEST(Simplex, HandlesLessEqualAndEquality) {
  // min -x - 2y  s.t. x + y <= 4, y == 1, x,y >= 0 -> x = 3, y = 1.
  model m;
  const auto x = m.add_variable(-1.0);
  const auto y = m.add_variable(-2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, row_sense::le, 4.0);
  m.add_constraint({{y, 1.0}}, row_sense::eq, 1.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
  EXPECT_NEAR(s.x[x], 3.0, 1e-8);
  EXPECT_NEAR(s.x[y], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasibility) {
  model m;
  const auto x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}}, row_sense::ge, 5.0);
  m.add_constraint({{x, 1.0}}, row_sense::le, 3.0);
  EXPECT_EQ(solve(m).status, solve_status::infeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  model m;
  const auto x = m.add_variable(-1.0);  // min -x with x free upward
  m.add_constraint({{x, 1.0}}, row_sense::ge, 0.0);
  EXPECT_EQ(solve(m).status, solve_status::unbounded);
}

TEST(Simplex, NoConstraintsNonNegativeCosts) {
  model m;
  m.add_variable(1.0);
  m.add_variable(0.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_DOUBLE_EQ(s.objective, 0.0);
}

TEST(Simplex, NoConstraintsNegativeCostIsUnbounded) {
  model m;
  m.add_variable(-1.0);
  EXPECT_EQ(solve(m).status, solve_status::unbounded);
}

TEST(Simplex, EmptyModelThrows) {
  model m;
  EXPECT_THROW(solve(m), check_error);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x  s.t. -x <= -3  (i.e. x >= 3).
  model m;
  const auto x = m.add_variable(1.0);
  m.add_constraint({{x, -1.0}}, row_sense::le, -3.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
}

TEST(Simplex, DuplicateCoefficientsAccumulate) {
  // x + x = 2x >= 4 -> x = 2.
  model m;
  const auto x = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}, {x, 1.0}}, row_sense::ge, 4.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.x[x], 2.0, 1e-8);
}

TEST(Simplex, ConstraintReferencingUnknownVariableThrows) {
  model m;
  m.add_variable(1.0);
  EXPECT_THROW(m.add_constraint({{5, 1.0}}, row_sense::ge, 1.0), check_error);
}

TEST(Simplex, StrongDualityOnSmallProblem) {
  // min 3x + 2y  s.t. x + y >= 2, x + 3y >= 3.
  model m;
  const auto x = m.add_variable(3.0);
  const auto y = m.add_variable(2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, row_sense::ge, 2.0);
  m.add_constraint({{x, 1.0}, {y, 3.0}}, row_sense::ge, 3.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  const double dual_obj = s.duals[0] * 2.0 + s.duals[1] * 3.0;
  EXPECT_NEAR(dual_obj, s.objective, 1e-7);
  // Duals of >= rows in a minimization are non-negative.
  EXPECT_GE(s.duals[0], -1e-9);
  EXPECT_GE(s.duals[1], -1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Multiple redundant constraints through the same vertex.
  model m;
  const auto x = m.add_variable(1.0);
  const auto y = m.add_variable(1.0);
  for (int i = 0; i < 5; ++i) {
    m.add_constraint({{x, 1.0}, {y, 1.0}}, row_sense::ge, 2.0);
  }
  m.add_constraint({{x, 1.0}}, row_sense::le, 2.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

TEST(Simplex, DualsCorrectForEqualityAndFlippedRows) {
  // min x + y  s.t.  x + y == 5,  -x <= -2  (i.e. x >= 2).
  // Optimum: any split with x >= 2, objective 5. Strong duality must hold
  // through the negative-RHS sign flip and the equality artificial.
  model m;
  const auto x = m.add_variable(1.0);
  const auto y = m.add_variable(1.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, row_sense::eq, 5.0);
  m.add_constraint({{x, -1.0}}, row_sense::le, -2.0);
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
  EXPECT_GE(s.x[x], 2.0 - 1e-8);
  const double dual_obj = s.duals[0] * 5.0 + s.duals[1] * (-2.0);
  EXPECT_NEAR(dual_obj, s.objective, 1e-7);
}

TEST(Simplex, IterationLimitReported) {
  // A non-trivial problem with a 1-iteration budget cannot finish.
  model m;
  const auto x = m.add_variable(1.0);
  const auto y = m.add_variable(2.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, row_sense::ge, 3.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, row_sense::ge, 4.0);
  solve_options opts;
  opts.max_iterations = 1;
  EXPECT_EQ(solve(m, opts).status, solve_status::iteration_limit);
}

TEST(ToString, CoversAllStatuses) {
  EXPECT_STREQ(to_string(solve_status::optimal), "optimal");
  EXPECT_STREQ(to_string(solve_status::infeasible), "infeasible");
  EXPECT_STREQ(to_string(solve_status::unbounded), "unbounded");
  EXPECT_STREQ(to_string(solve_status::iteration_limit), "iteration_limit");
}

// Property suite: random covering LPs; check feasibility of the solution,
// strong duality, and dual signs.
class SimplexRandomCovering : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandomCovering, PrimalFeasibleAndStrongDuality) {
  rng gen(GetParam());
  const std::size_t vars = 5 + static_cast<std::size_t>(gen.uniform_int(0, 10));
  const std::size_t rows = 3 + static_cast<std::size_t>(gen.uniform_int(0, 6));
  model m;
  for (std::size_t v = 0; v < vars; ++v) {
    m.add_variable(gen.uniform_real(1.0, 10.0));
  }
  std::vector<double> rhs(rows);
  std::vector<std::vector<double>> coef(rows, std::vector<double>(vars, 0.0));
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::pair<std::size_t, double>> row;
    for (std::size_t v = 0; v < vars; ++v) {
      if (gen.bernoulli(0.5)) {
        coef[r][v] = gen.uniform_real(0.5, 3.0);
        row.emplace_back(v, coef[r][v]);
      }
    }
    if (row.empty()) {
      coef[r][0] = 1.0;
      row.emplace_back(0, 1.0);
    }
    rhs[r] = gen.uniform_real(1.0, 20.0);
    m.add_constraint(row, row_sense::ge, rhs[r]);
  }
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);

  // Primal feasibility.
  for (std::size_t r = 0; r < rows; ++r) {
    double lhs = 0.0;
    for (std::size_t v = 0; v < vars; ++v) lhs += coef[r][v] * s.x[v];
    EXPECT_GE(lhs, rhs[r] - 1e-6);
  }
  for (double xv : s.x) EXPECT_GE(xv, -1e-9);

  // Strong duality and dual feasibility (y >= 0, A^T y <= c).
  double dual_obj = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    EXPECT_GE(s.duals[r], -1e-7);
    dual_obj += s.duals[r] * rhs[r];
  }
  EXPECT_NEAR(dual_obj, s.objective, 1e-5 * (1.0 + std::abs(s.objective)));
  for (std::size_t v = 0; v < vars; ++v) {
    double aty = 0.0;
    for (std::size_t r = 0; r < rows; ++r) aty += coef[r][v] * s.duals[r];
    EXPECT_LE(aty, m.cost(v) + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandomCovering,
                         ::testing::Range<std::uint64_t>(1, 26));

// Brute-force cross-check: for random 2-variable LPs, the optimum lies at a
// vertex of the feasible region; enumerate all constraint-pair
// intersections (plus axis intersections) and compare.
class SimplexVsBruteForce2D : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimplexVsBruteForce2D, AgreesWithVertexEnumeration) {
  rng gen(GetParam() * 7 + 100);
  const double c0 = gen.uniform_real(0.5, 5.0);
  const double c1 = gen.uniform_real(0.5, 5.0);
  const std::size_t rows = 3;
  std::vector<std::array<double, 3>> cons(rows);  // a0 x + a1 y >= b
  model m;
  const auto x = m.add_variable(c0);
  const auto y = m.add_variable(c1);
  for (auto& c : cons) {
    c[0] = gen.uniform_real(0.2, 2.0);
    c[1] = gen.uniform_real(0.2, 2.0);
    c[2] = gen.uniform_real(1.0, 10.0);
    m.add_constraint({{x, c[0]}, {y, c[1]}}, row_sense::ge, c[2]);
  }
  const solution s = solve(m);
  ASSERT_EQ(s.status, solve_status::optimal);

  // Candidate vertices: pairwise constraint intersections and single
  // constraints against each axis.
  auto feasible = [&](double px, double py) {
    if (px < -1e-9 || py < -1e-9) return false;
    for (const auto& c : cons) {
      if (c[0] * px + c[1] * py < c[2] - 1e-7) return false;
    }
    return true;
  };
  double best = std::numeric_limits<double>::infinity();
  auto consider = [&](double px, double py) {
    if (feasible(px, py)) best = std::min(best, c0 * px + c1 * py);
  };
  for (std::size_t i = 0; i < rows; ++i) {
    consider(cons[i][2] / cons[i][0], 0.0);  // axis intersections
    consider(0.0, cons[i][2] / cons[i][1]);
    for (std::size_t j = i + 1; j < rows; ++j) {
      const double det = cons[i][0] * cons[j][1] - cons[j][0] * cons[i][1];
      if (std::abs(det) < 1e-12) continue;
      const double px = (cons[i][2] * cons[j][1] - cons[j][2] * cons[i][1]) / det;
      const double py = (cons[i][0] * cons[j][2] - cons[j][0] * cons[i][2]) / det;
      consider(px, py);
    }
  }
  ASSERT_LT(best, std::numeric_limits<double>::infinity());
  EXPECT_NEAR(s.objective, best, 1e-6 * (1.0 + best));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexVsBruteForce2D,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace ecrs::lp
