// Unit tests for ecrs::common (rng, statistics, table, flags, check).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace ecrs {
namespace {

// ------------------------------------------------------------------- check

TEST(Check, PassingCheckDoesNothing) { ECRS_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(ECRS_CHECK(false), check_error);
}

TEST(Check, MessageIsIncluded) {
  try {
    ECRS_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  rng a(7);
  rng fork_before = a.fork(5);
  (void)a();
  (void)a();
  rng b(7);
  rng fork_after = b.fork(5);
  // Forks derive from seed state, so forking before/after parent draws from
  // the same state yields the same stream.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork_before(), fork_after());
}

TEST(Rng, UniformIntStaysInRange) {
  rng gen(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = gen.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  rng gen(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(gen.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingletonRange) {
  rng gen(5);
  EXPECT_EQ(gen.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  rng gen(5);
  EXPECT_THROW(gen.uniform_int(3, 2), check_error);
}

TEST(Rng, UniformRealBounds) {
  rng gen(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = gen.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRealMeanApproximatesMidpoint) {
  rng gen(12);
  running_stats s;
  for (int i = 0; i < 20000; ++i) s.add(gen.uniform_real(0.0, 10.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  rng gen(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  rng gen(14);
  running_stats s;
  for (int i = 0; i < 20000; ++i) s.add(gen.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.03);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  rng gen(15);
  EXPECT_THROW(gen.exponential(0.0), check_error);
}

TEST(Rng, PoissonSmallMean) {
  rng gen(16);
  running_stats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(gen.poisson(5.0)));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
  EXPECT_NEAR(s.variance(), 5.0, 0.5);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  rng gen(17);
  running_stats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(gen.poisson(100.0)));
  }
  EXPECT_NEAR(s.mean(), 100.0, 1.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  rng gen(18);
  EXPECT_EQ(gen.poisson(0.0), 0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  rng gen(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[gen.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  rng gen(20);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(gen.weighted_index(w), check_error);
}

TEST(Rng, ChiSquareUniformity) {
  // 16-bin chi-square goodness-of-fit on uniform_int draws. With df = 15
  // the 99.9th percentile is ~37.7; a correct generator stays well below.
  rng gen(123456);
  constexpr int kBins = 16;
  constexpr int kDraws = 160000;
  int counts[kBins] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[gen.uniform_int(0, kBins - 1)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, HighBitsAndLowBitsBothUniform) {
  rng gen(7);
  int high = 0;
  int low = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = gen();
    high += (v >> 63) & 1u;
    low += v & 1u;
  }
  EXPECT_NEAR(high / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(low / static_cast<double>(kDraws), 0.5, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  rng gen(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  gen.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  rng gen(22);
  const auto sample = gen.sample_without_replacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 20u);
}

TEST(Rng, SampleAllElements) {
  rng gen(23);
  const auto sample = gen.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  rng gen(24);
  EXPECT_THROW(gen.sample_without_replacement(3, 4), check_error);
}

// -------------------------------------------------------------- statistics

TEST(RunningStats, BasicMoments) {
  running_stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  running_stats s;
  EXPECT_THROW(s.mean(), check_error);
  EXPECT_THROW(s.min(), check_error);
}

TEST(RunningStats, MergeMatchesCombined) {
  running_stats a;
  running_stats b;
  running_stats all;
  rng gen(31);
  for (int i = 0; i < 500; ++i) {
    const double v = gen.uniform_real(-5.0, 5.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  running_stats a;
  a.add(1.0);
  running_stats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, SampleVarianceNeedsTwo) {
  running_stats s;
  s.add(1.0);
  EXPECT_THROW(s.sample_variance(), check_error);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(Histogram, BinningAndClamping) {
  histogram h(0.0, 10.0, 5);
  h.add(1.0);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
}

TEST(Histogram, AsciiRendering) {
  histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(histogram(1.0, 1.0, 3), check_error);
  EXPECT_THROW(histogram(0.0, 1.0, 0), check_error);
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 30.0), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), check_error);
}

TEST(HarmonicNumber, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic_number(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_number(1), 1.0);
  EXPECT_NEAR(harmonic_number(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  // H_n ~ ln n + gamma.
  EXPECT_NEAR(harmonic_number(100000), std::log(100000.0) + 0.5772156649,
              1e-4);
}

// ------------------------------------------------------------------- table

TEST(Table, AsciiContainsHeadersAndCells) {
  table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), 2.0});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("1.5"), std::string::npos);
}

TEST(Table, RowLengthMismatchThrows) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), check_error);
}

TEST(Table, CsvRoundValues) {
  table t({"x", "label"});
  t.add_row({static_cast<long long>(3), std::string("plain")});
  t.add_row({2.25, std::string("with,comma")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,label"), std::string::npos);
  EXPECT_NE(csv.find("3,plain"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, NumberAtParsesAllCellKinds) {
  table t({"v"});
  t.add_row({1.5});
  t.add_row({static_cast<long long>(7)});
  t.add_row({std::string("2.5")});
  EXPECT_DOUBLE_EQ(t.number_at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(t.number_at(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(t.number_at(2, 0), 2.5);
}

TEST(Table, PrecisionControlsRendering) {
  table t({"v"});
  t.add_row({3.14159265});
  t.set_precision(3);
  EXPECT_EQ(t.text_at(0, 0), "3.14");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ------------------------------------------------------------------- flags

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--gamma"};
  flags f(5, argv);
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(f.get_double("beta", 0.0), 4.5);
  EXPECT_TRUE(f.get_bool("gamma", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  flags f(1, argv);
  EXPECT_EQ(f.get_int("missing", 9), 9);
  EXPECT_EQ(f.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "input.csv", "--k=1", "other"};
  flags f(4, argv);
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(Flags, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  flags f(2, argv);
  EXPECT_THROW(f.get_int("n", 0), check_error);
  EXPECT_THROW(f.get_double("n", 0.0), check_error);
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=0", "--c=off"};
  flags f(4, argv);
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_FALSE(f.get_bool("c", true));
}

// --------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresElapsedTime) {
  stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(w.elapsed_seconds(), 0.0);
  EXPECT_GE(w.elapsed_ms(), w.elapsed_seconds() * 1000.0 - 1e-9);
}

TEST(Stopwatch, RestartResets) {
  stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double before = w.elapsed_seconds();
  w.restart();
  EXPECT_LE(w.elapsed_seconds(), before + 1.0);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeReturnsImmediately) {
  thread_pool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  thread_pool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  thread_pool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 7) throw check_error("boom");
                                 }),
               check_error);
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  // The caller drains its own range, so nesting inside a worker cannot
  // deadlock even when every pool thread is busy.
  thread_pool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPool, MaxWorkersOneRunsOnCaller) {
  thread_pool pool(4);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(
      16, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*max_workers=*/1);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&thread_pool::shared(), &thread_pool::shared());
  EXPECT_GE(thread_pool::shared().size(), 1u);
}

TEST(ParallelForFreeFunction, NullPoolRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace ecrs
