// Unit tests for ecrs::common (rng, statistics, table, flags, check,
// arena, simd).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/statistics.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace ecrs {
namespace {

// ------------------------------------------------------------------- check

TEST(Check, PassingCheckDoesNothing) { ECRS_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(ECRS_CHECK(false), check_error);
}

TEST(Check, MessageIsIncluded) {
  try {
    ECRS_CHECK_MSG(false, "context " << 42);
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
  }
}

// --------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkIsIndependentOfParentDraws) {
  rng a(7);
  rng fork_before = a.fork(5);
  (void)a();
  (void)a();
  rng b(7);
  rng fork_after = b.fork(5);
  // Forks derive from seed state, so forking before/after parent draws from
  // the same state yields the same stream.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork_before(), fork_after());
}

TEST(Rng, UniformIntStaysInRange) {
  rng gen(99);
  for (int i = 0; i < 1000; ++i) {
    const auto v = gen.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  rng gen(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(gen.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntSingletonRange) {
  rng gen(5);
  EXPECT_EQ(gen.uniform_int(42, 42), 42);
}

TEST(Rng, UniformIntRejectsEmptyRange) {
  rng gen(5);
  EXPECT_THROW(gen.uniform_int(3, 2), check_error);
}

TEST(Rng, UniformRealBounds) {
  rng gen(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = gen.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformRealMeanApproximatesMidpoint) {
  rng gen(12);
  running_stats s;
  for (int i = 0; i < 20000; ++i) s.add(gen.uniform_real(0.0, 10.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
}

TEST(Rng, BernoulliFrequency) {
  rng gen(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  rng gen(14);
  running_stats s;
  for (int i = 0; i < 20000; ++i) s.add(gen.exponential(2.0));
  EXPECT_NEAR(s.mean(), 0.5, 0.03);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  rng gen(15);
  EXPECT_THROW(gen.exponential(0.0), check_error);
}

TEST(Rng, PoissonSmallMean) {
  rng gen(16);
  running_stats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(gen.poisson(5.0)));
  }
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
  EXPECT_NEAR(s.variance(), 5.0, 0.5);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  rng gen(17);
  running_stats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(static_cast<double>(gen.poisson(100.0)));
  }
  EXPECT_NEAR(s.mean(), 100.0, 1.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  rng gen(18);
  EXPECT_EQ(gen.poisson(0.0), 0);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  rng gen(19);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[gen.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 10000.0, 0.75, 0.03);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  rng gen(20);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(gen.weighted_index(w), check_error);
}

TEST(Rng, ChiSquareUniformity) {
  // 16-bin chi-square goodness-of-fit on uniform_int draws. With df = 15
  // the 99.9th percentile is ~37.7; a correct generator stays well below.
  rng gen(123456);
  constexpr int kBins = 16;
  constexpr int kDraws = 160000;
  int counts[kBins] = {};
  for (int i = 0; i < kDraws; ++i) {
    ++counts[gen.uniform_int(0, kBins - 1)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = static_cast<double>(c) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(Rng, HighBitsAndLowBitsBothUniform) {
  rng gen(7);
  int high = 0;
  int low = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t v = gen();
    high += (v >> 63) & 1u;
    low += v & 1u;
  }
  EXPECT_NEAR(high / static_cast<double>(kDraws), 0.5, 0.01);
  EXPECT_NEAR(low / static_cast<double>(kDraws), 0.5, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  rng gen(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  gen.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  rng gen(22);
  const auto sample = gen.sample_without_replacement(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 20u);
}

TEST(Rng, SampleAllElements) {
  rng gen(23);
  const auto sample = gen.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  rng gen(24);
  EXPECT_THROW(gen.sample_without_replacement(3, 4), check_error);
}

// -------------------------------------------------------------- statistics

TEST(RunningStats, BasicMoments) {
  running_stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyThrows) {
  running_stats s;
  EXPECT_THROW(s.mean(), check_error);
  EXPECT_THROW(s.min(), check_error);
}

TEST(RunningStats, MergeMatchesCombined) {
  running_stats a;
  running_stats b;
  running_stats all;
  rng gen(31);
  for (int i = 0; i < 500; ++i) {
    const double v = gen.uniform_real(-5.0, 5.0);
    (i % 2 == 0 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  running_stats a;
  a.add(1.0);
  running_stats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(RunningStats, SampleVarianceNeedsTwo) {
  running_stats s;
  s.add(1.0);
  EXPECT_THROW(s.sample_variance(), check_error);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 2.0);
}

TEST(RunningStats, StddevNeverNaNOnNearConstantStreams) {
  // Streams of (nearly) identical large values drive Welford's
  // delta * (x - mean) term through heavy cancellation; before the m2_
  // clamp this could leave m2_ a few ulps negative and stddev() NaN.
  const double values[] = {1e15 + 0.1, 1e15 + 0.1, 1e15 + 0.2, 1e15 + 0.1,
                           1e15 + 0.3, 1e15 + 0.1, 1e15 + 0.2, 1e15 + 0.1};
  running_stats s;
  for (const double v : values) {
    s.add(v);
    EXPECT_FALSE(std::isnan(s.stddev())) << "after adding " << v;
    EXPECT_GE(s.variance(), 0.0);
  }
  // Constant stream: variance is exactly zero, never negative.
  running_stats c;
  for (int i = 0; i < 1000; ++i) c.add(3.14159);
  EXPECT_GE(c.variance(), 0.0);
  EXPECT_FALSE(std::isnan(c.stddev()));
}

TEST(RunningStats, MergeOrderInvariance) {
  // The same sample pushed serially, merged from two shards, and merged
  // pairwise from four shards must agree (within FP tolerance) and must
  // never yield a NaN stddev, whatever the merge tree looks like.
  rng gen(0x57A75u);
  std::vector<double> sample;
  for (int i = 0; i < 4000; ++i) {
    sample.push_back(1e9 + gen.uniform_real(0.0, 1e-3));
  }

  running_stats serial;
  for (const double v : sample) serial.add(v);

  running_stats halves[2];
  for (std::size_t i = 0; i < sample.size(); ++i) {
    halves[i % 2].add(sample[i]);
  }
  running_stats two_way = halves[0];
  two_way.merge(halves[1]);

  running_stats quarters[4];
  for (std::size_t i = 0; i < sample.size(); ++i) {
    quarters[i % 4].add(sample[i]);
  }
  running_stats left = quarters[0], right = quarters[2];
  left.merge(quarters[1]);
  right.merge(quarters[3]);
  running_stats pairwise = left;
  pairwise.merge(right);

  for (const running_stats* s : {&two_way, &pairwise}) {
    EXPECT_EQ(s->count(), serial.count());
    EXPECT_NEAR(s->mean(), serial.mean(), 1e-6 * std::abs(serial.mean()));
    EXPECT_NEAR(s->variance(), serial.variance(),
                1e-6 + 1e-6 * serial.variance());
    EXPECT_FALSE(std::isnan(s->stddev()));
    EXPECT_GE(s->variance(), 0.0);
  }
}

TEST(Histogram, BinningAndClamping) {
  histogram h(0.0, 10.0, 5);
  h.add(1.0);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-5.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_lower(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_upper(1), 4.0);
}

TEST(Histogram, AsciiRendering) {
  histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, RejectsBadRange) {
  EXPECT_THROW(histogram(1.0, 1.0, 3), check_error);
  EXPECT_THROW(histogram(0.0, 1.0, 0), check_error);
}

TEST(Percentile, OrderStatistics) {
  std::vector<double> v = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 30.0), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 50.0), check_error);
}

TEST(HarmonicNumber, KnownValues) {
  EXPECT_DOUBLE_EQ(harmonic_number(0), 0.0);
  EXPECT_DOUBLE_EQ(harmonic_number(1), 1.0);
  EXPECT_NEAR(harmonic_number(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  // H_n ~ ln n + gamma.
  EXPECT_NEAR(harmonic_number(100000), std::log(100000.0) + 0.5772156649,
              1e-4);
}

// ------------------------------------------------------------------- table

TEST(Table, AsciiContainsHeadersAndCells) {
  table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), 2.0});
  const std::string ascii = t.to_ascii();
  EXPECT_NE(ascii.find("name"), std::string::npos);
  EXPECT_NE(ascii.find("alpha"), std::string::npos);
  EXPECT_NE(ascii.find("1.5"), std::string::npos);
}

TEST(Table, RowLengthMismatchThrows) {
  table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), check_error);
}

TEST(Table, CsvRoundValues) {
  table t({"x", "label"});
  t.add_row({static_cast<long long>(3), std::string("plain")});
  t.add_row({2.25, std::string("with,comma")});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("x,label"), std::string::npos);
  EXPECT_NE(csv.find("3,plain"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
}

TEST(Table, NumberAtParsesAllCellKinds) {
  table t({"v"});
  t.add_row({1.5});
  t.add_row({static_cast<long long>(7)});
  t.add_row({std::string("2.5")});
  EXPECT_DOUBLE_EQ(t.number_at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(t.number_at(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(t.number_at(2, 0), 2.5);
}

TEST(Table, PrecisionControlsRendering) {
  table t({"v"});
  t.add_row({3.14159265});
  t.set_precision(3);
  EXPECT_EQ(t.text_at(0, 0), "3.14");
}

TEST(CsvEscape, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

// ------------------------------------------------------------------- flags

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--gamma"};
  flags f(5, argv);
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(f.get_double("beta", 0.0), 4.5);
  EXPECT_TRUE(f.get_bool("gamma", false));
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  flags f(1, argv);
  EXPECT_EQ(f.get_int("missing", 9), 9);
  EXPECT_EQ(f.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(f.has("missing"));
}

TEST(Flags, PositionalArgumentsCollected) {
  const char* argv[] = {"prog", "input.csv", "--k=1", "other"};
  flags f(4, argv);
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.csv");
  EXPECT_EQ(f.positional()[1], "other");
}

TEST(Flags, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--n=abc"};
  flags f(2, argv);
  EXPECT_THROW(f.get_int("n", 0), check_error);
  EXPECT_THROW(f.get_double("n", 0.0), check_error);
}

TEST(Flags, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=0", "--c=off"};
  flags f(4, argv);
  EXPECT_TRUE(f.get_bool("a", false));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_FALSE(f.get_bool("c", true));
}

// --------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresElapsedTime) {
  stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(w.elapsed_seconds(), 0.0);
  EXPECT_GE(w.elapsed_ms(), w.elapsed_seconds() * 1000.0 - 1e-9);
}

TEST(Stopwatch, RestartResets) {
  stopwatch w;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<double>(i);
  const double before = w.elapsed_seconds();
  w.restart();
  EXPECT_LE(w.elapsed_seconds(), before + 1.0);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  thread_pool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeReturnsImmediately) {
  thread_pool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  thread_pool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(10, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  thread_pool pool(2);
  EXPECT_THROW(pool.parallel_for(64,
                                 [](std::size_t i) {
                                   if (i == 7) throw check_error("boom");
                                 }),
               check_error);
}

TEST(ThreadPool, NestedParallelForMakesProgress) {
  // The caller drains its own range, so nesting inside a worker cannot
  // deadlock even when every pool thread is busy.
  thread_pool pool(1);
  std::atomic<std::size_t> total{0};
  pool.parallel_for(4, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPool, MaxWorkersOneRunsOnCaller) {
  thread_pool pool(4);
  const auto caller = std::this_thread::get_id();
  pool.parallel_for(
      16, [&](std::size_t) { EXPECT_EQ(std::this_thread::get_id(), caller); },
      /*max_workers=*/1);
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&thread_pool::shared(), &thread_pool::shared());
  EXPECT_GE(thread_pool::shared().size(), 1u);
}

TEST(ParallelForFreeFunction, NullPoolRunsInline) {
  std::vector<std::size_t> order;
  parallel_for(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

// ------------------------------------------------------------------- arena

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  arena a;
  auto* p8 = a.alloc_array<std::int64_t>(7);
  auto* p4 = a.alloc_array<std::uint32_t>(3);
  auto* p1 = a.alloc_array<char>(5);
  auto* q8 = a.alloc_array<std::int64_t>(2);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p8) % alignof(std::int64_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p4) % alignof(std::uint32_t), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(q8) % alignof(std::int64_t), 0u);
  // Writes through one pointer must not clobber another's range.
  for (int i = 0; i < 7; ++i) p8[i] = 0x1111111111111111;
  for (int i = 0; i < 3; ++i) p4[i] = 0x22222222u;
  for (int i = 0; i < 5; ++i) p1[i] = 'x';
  for (int i = 0; i < 2; ++i) q8[i] = -1;
  for (int i = 0; i < 7; ++i) EXPECT_EQ(p8[i], 0x1111111111111111);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(p4[i], 0x22222222u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(p1[i], 'x');
}

TEST(Arena, SteadyStateNeverGrows) {
  arena a;
  {
    const arena::scope s(a);
    (void)a.alloc_array<std::int64_t>(10000);
    (void)a.alloc_array<char>(300);
  }
  const std::size_t blocks = a.block_count();
  const std::size_t bytes = a.capacity();
  // Replaying the same (or a smaller) allocation pattern reuses the blocks.
  for (int round = 0; round < 50; ++round) {
    const arena::scope s(a);
    (void)a.alloc_array<std::int64_t>(10000);
    (void)a.alloc_array<char>(100 + round);
    EXPECT_EQ(a.block_count(), blocks) << "round " << round;
    EXPECT_EQ(a.capacity(), bytes) << "round " << round;
  }
}

TEST(Arena, ScopesNestLifo) {
  arena a;
  const arena::mark start = a.save();
  {
    const arena::scope outer(a);
    auto* x = a.alloc_array<int>(4);
    x[0] = 42;
    {
      const arena::scope inner(a);
      (void)a.alloc_array<int>(1000);
    }
    // Inner rewind must not disturb outer allocations.
    auto* y = a.alloc_array<int>(4);
    EXPECT_EQ(x[0], 42);
    EXPECT_NE(x, y);
  }
  const arena::mark end = a.save();
  EXPECT_EQ(start.block, end.block);
  EXPECT_EQ(start.offset, end.offset);
}

TEST(Arena, ForThreadIsPerThread) {
  arena& mine = arena::for_thread();
  arena* other = nullptr;
  std::thread t([&] { other = &arena::for_thread(); });
  t.join();
  EXPECT_NE(&mine, other);
  // Same thread, same arena.
  EXPECT_EQ(&arena::for_thread(), &mine);
}

// -------------------------------------------------------------------- simd

// Restores the dispatched tier on destruction so tests compose.
struct tier_restore {
  simd::level prev = simd::active_level();
  ~tier_restore() { simd::force(prev); }
};

std::vector<simd::level> supported_tiers() {
  std::vector<simd::level> tiers = {simd::level::scalar};
  for (const simd::level l : {simd::level::sse2, simd::level::avx2}) {
    if (static_cast<int>(l) <= static_cast<int>(simd::max_supported())) {
      tiers.push_back(l);
    }
  }
  return tiers;
}

TEST(Simd, ForceClampsToSupport) {
  const tier_restore restore;
  EXPECT_EQ(simd::force(simd::level::scalar), simd::level::scalar);
  const simd::level got = simd::force(simd::level::avx2);
  EXPECT_LE(static_cast<int>(got), static_cast<int>(simd::max_supported()));
  EXPECT_EQ(simd::active_level(), got);
}

TEST(Simd, SumAndConsumeMatchScalarOnAllLengths) {
  const tier_restore restore;
  rng gen(0x5EEDBEEFu);
  // Every length through 3 vector widths + tails, plus a long row.
  for (std::size_t n = 0; n <= 24; n += (n < 13 ? 1 : 3)) {
    std::vector<std::int64_t> vals(64);
    for (auto& v : vals) v = gen.uniform_int(0, 100);
    std::vector<std::uint32_t> idx(n);
    // Distinct, non-contiguous, unsorted-ish indices (stride walk).
    for (std::size_t j = 0; j < n; ++j) {
      idx[j] = static_cast<std::uint32_t>((j * 5 + 3) % 64);
    }
    const std::int64_t bound = gen.uniform_int(0, 50);

    simd::force(simd::level::scalar);
    const std::int64_t want_sum =
        simd::sum_min_indexed(vals.data(), idx.data(), n, bound);
    std::vector<std::int64_t> want_vals = vals;
    const std::int64_t want_used =
        simd::consume_min_indexed(want_vals.data(), idx.data(), n, bound);

    for (const simd::level tier : supported_tiers()) {
      simd::force(tier);
      EXPECT_EQ(simd::sum_min_indexed(vals.data(), idx.data(), n, bound),
                want_sum)
          << simd::to_string(tier) << " n=" << n;
      std::vector<std::int64_t> got_vals = vals;
      EXPECT_EQ(
          simd::consume_min_indexed(got_vals.data(), idx.data(), n, bound),
          want_used)
          << simd::to_string(tier) << " n=" << n;
      EXPECT_EQ(got_vals, want_vals) << simd::to_string(tier) << " n=" << n;
    }
  }
}

TEST(Simd, RatioArgminMatchesScalarWithSkipsAndHugeUtils) {
  const tier_restore restore;
  rng gen(0xA5A5A5u);
  const std::int64_t huge = (std::int64_t{1} << 52) + 7;  // beyond exact range
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(gen.uniform_int(0, 21));
    std::vector<double> price(n);
    std::vector<std::int64_t> util(n);
    std::vector<std::uint32_t> seller(n);
    std::vector<char> active(8, 1);
    active[3] = 0;
    for (std::size_t j = 0; j < n; ++j) {
      price[j] = gen.uniform_real(0.0, 40.0);
      util[j] = gen.uniform_int(0, 30);       // zeros → dead lanes
      if (gen.uniform_int(0, 9) == 0) util[j] = huge;
      seller[j] = static_cast<std::uint32_t>(gen.uniform_int(0, 7));
    }
    const std::uint32_t skip_index =
        gen.uniform_int(0, 1) ? static_cast<std::uint32_t>(
                                    gen.uniform_int(0, static_cast<int>(n) - 1))
                              : simd::kNoIndex;
    const std::uint32_t skip_seller =
        gen.uniform_int(0, 1) ? static_cast<std::uint32_t>(gen.uniform_int(0, 7))
                              : simd::kNoSeller;

    simd::force(simd::level::scalar);
    const simd::ratio_best want =
        simd::ratio_argmin(price.data(), util.data(), seller.data(),
                           active.data(), n, skip_index, skip_seller);
    for (const simd::level tier : supported_tiers()) {
      simd::force(tier);
      const simd::ratio_best got =
          simd::ratio_argmin(price.data(), util.data(), seller.data(),
                             active.data(), n, skip_index, skip_seller);
      EXPECT_EQ(got.index, want.index)
          << simd::to_string(tier) << " trial " << trial;
      EXPECT_EQ(got.ratio, want.ratio)
          << simd::to_string(tier) << " trial " << trial;
    }
  }
}

TEST(Simd, RatioArgminEmptyCandidateSet) {
  const tier_restore restore;
  const double price[] = {1.0, 2.0};
  const std::int64_t util[] = {0, 0};  // all dead
  const std::uint32_t seller[] = {0u, 1u};
  const char active[] = {1, 1};
  for (const simd::level tier : supported_tiers()) {
    simd::force(tier);
    const simd::ratio_best got =
        simd::ratio_argmin(price, util, seller, active, 2, simd::kNoIndex,
                           simd::kNoSeller);
    EXPECT_EQ(got.index, simd::kNoIndex) << simd::to_string(tier);
    EXPECT_EQ(got.ratio, std::numeric_limits<double>::infinity())
        << simd::to_string(tier);
  }
}

}  // namespace
}  // namespace ecrs
