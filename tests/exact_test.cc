// Tests for the reference solvers: single-demander DP, general
// branch-and-bound, LP bounds, and the offline multi-stage solvers.
#include <gtest/gtest.h>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

// ------------------------------------------------------------- DP (m = 1)

TEST(DpExact, PicksGloballyOptimalCombination) {
  single_stage_instance inst;
  inst.requirements = {6};
  // Optimal: bids 1 + 2 (cost 7), not the single big bid (cost 9).
  inst.bids = {make_bid(0, {0}, 6, 9.0), make_bid(1, {0}, 3, 3.0),
               make_bid(2, {0}, 3, 4.0)};
  const auto ref = solve_exact(inst);
  ASSERT_TRUE(ref.exact);
  ASSERT_TRUE(ref.feasible);
  EXPECT_DOUBLE_EQ(ref.cost, 7.0);
  EXPECT_TRUE(selection_feasible(inst, ref.chosen));
}

TEST(DpExact, RespectsOneBidPerSeller) {
  single_stage_instance inst;
  inst.requirements = {6};
  // Seller 0 has two cheap 3-unit bids; only one may be used, so seller 1
  // is needed.
  inst.bids = {make_bid(0, {0}, 3, 1.0, 0), make_bid(0, {0}, 3, 1.5, 1),
               make_bid(1, {0}, 3, 5.0)};
  const auto ref = solve_exact(inst);
  ASSERT_TRUE(ref.feasible);
  EXPECT_DOUBLE_EQ(ref.cost, 6.0);
  EXPECT_TRUE(selection_feasible(inst, ref.chosen));
}

TEST(DpExact, ZeroRequirementCostsNothing) {
  single_stage_instance inst;
  inst.requirements = {0};
  inst.bids = {make_bid(0, {0}, 3, 1.0)};
  const auto ref = solve_exact(inst);
  EXPECT_TRUE(ref.feasible);
  EXPECT_DOUBLE_EQ(ref.cost, 0.0);
  EXPECT_TRUE(ref.chosen.empty());
}

TEST(DpExact, DetectsInfeasibility) {
  single_stage_instance inst;
  inst.requirements = {10};
  inst.bids = {make_bid(0, {0}, 3, 1.0)};
  const auto ref = solve_exact(inst);
  EXPECT_FALSE(ref.feasible);
  EXPECT_TRUE(ref.exact);
}

// -------------------------------------------------------- B&B (general m)

TEST(BranchAndBound, SolvesMultiDemanderOptimum) {
  single_stage_instance inst;
  inst.requirements = {2, 2};
  // Covering both with one bid (cost 5) beats two singles (3 + 3).
  inst.bids = {make_bid(0, {0, 1}, 2, 5.0), make_bid(1, {0}, 2, 3.0),
               make_bid(2, {1}, 2, 3.0)};
  const auto ref = solve_exact(inst);
  ASSERT_TRUE(ref.exact);
  ASSERT_TRUE(ref.feasible);
  EXPECT_DOUBLE_EQ(ref.cost, 5.0);
}

TEST(BranchAndBound, InfeasibleMultiDemander) {
  single_stage_instance inst;
  inst.requirements = {5, 5};
  inst.bids = {make_bid(0, {0}, 5, 1.0)};  // demander 1 can never be covered
  const auto ref = solve_exact(inst);
  EXPECT_FALSE(ref.feasible);
}

class ExactMatchesExhaustive : public ::testing::TestWithParam<std::uint64_t> {
};

// Cross-validate B&B against the DP on single-demander instances reshaped
// as multi-demander (one demander duplicated has identical semantics).
TEST_P(ExactMatchesExhaustive, BnbAgreesWithDpOnSingleDemander) {
  rng gen(GetParam());
  instance_config cfg;
  cfg.sellers = 7;
  cfg.demanders = 1;
  cfg.bids_per_seller = 2;
  const auto inst = random_instance(cfg, gen);
  const auto dp_ref = solve_exact(inst);  // dispatches to DP

  // Force the B&B path by adding a second demander with zero requirement.
  single_stage_instance two = inst;
  two.requirements.push_back(0);
  const auto bnb_ref = solve_exact(two);

  ASSERT_EQ(dp_ref.feasible, bnb_ref.feasible);
  if (dp_ref.feasible) {
    EXPECT_NEAR(dp_ref.cost, bnb_ref.cost, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactMatchesExhaustive,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(BranchAndBound, NodeLimitFallsBackToCertifiedBound) {
  rng gen(31);
  instance_config cfg;
  cfg.sellers = 14;
  cfg.demanders = 4;
  cfg.bids_per_seller = 3;
  const auto inst = random_instance(cfg, gen);
  // A node limit of 1 exhausts immediately; the incumbent (greedy) is kept
  // and the LP bound certifies.
  const auto ref = solve_exact(inst, 1);
  EXPECT_FALSE(ref.exact);
  ASSERT_TRUE(ref.feasible);  // greedy incumbent exists
  EXPECT_GT(ref.lower_bound, 0.0);
  EXPECT_LE(ref.lower_bound, ref.cost + 1e-9);
}

TEST(SolveExact, DeterministicAcrossCalls) {
  rng gen(17);
  instance_config cfg;
  cfg.sellers = 9;
  cfg.demanders = 3;
  const auto inst = random_instance(cfg, gen);
  const auto a = solve_exact(inst);
  const auto b = solve_exact(inst);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
  EXPECT_EQ(a.nodes, b.nodes);
}

// ----------------------------------------------------------------- LP bound

TEST(LpBound, LowerBoundsTheExactOptimum) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    rng gen(seed);
    instance_config cfg;
    cfg.sellers = 8;
    cfg.demanders = 3;
    const auto inst = random_instance(cfg, gen);
    const auto ref = solve_exact(inst);
    if (!ref.feasible) continue;
    const double bound = lp_bound(inst);
    EXPECT_LE(bound, ref.cost + 1e-6) << "seed " << seed;
    EXPECT_GT(bound, 0.0);
  }
}

TEST(LpBound, TightWhenRelaxationIsIntegral) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  EXPECT_NEAR(lp_bound(inst), 10.0, 1e-6);
}

// ----------------------------------------------------------------- offline

online_instance small_online() {
  online_instance inst;
  inst.rounds.resize(2);
  inst.rounds[0].requirements = {2};
  inst.rounds[0].bids = {make_bid(0, {0}, 2, 3.0), make_bid(1, {0}, 2, 5.0)};
  inst.rounds[1].requirements = {2};
  inst.rounds[1].bids = {make_bid(0, {0}, 2, 3.0), make_bid(1, {0}, 2, 4.0)};
  inst.sellers = {seller_profile{2, 1, 2}, seller_profile{2, 1, 2}};
  return inst;
}

TEST(OfflineExact, CapacityForcesExpensiveAlternative) {
  // Seller 0 (capacity 1 participation unit) can win only one round; the
  // offline optimum uses it in one round and seller 1 in the other.
  online_instance inst = small_online();
  inst.sellers[0].capacity = 1;
  const auto ref = offline_exact(inst);
  ASSERT_TRUE(ref.exact);
  ASSERT_TRUE(ref.feasible);
  // Best: seller 0 in round 2 (3.0) + seller 1 in round 1 (5.0) = 8, or
  // seller 0 in round 1 (3.0) + seller 1 in round 2 (4.0) = 7.
  EXPECT_DOUBLE_EQ(ref.cost, 7.0);
}

TEST(OfflineExact, AmpleCapacityUsesCheapestEachRound) {
  const auto ref = offline_exact(small_online());
  ASSERT_TRUE(ref.feasible);
  EXPECT_DOUBLE_EQ(ref.cost, 6.0);
}

TEST(OfflineExact, WindowsExcludeSellers) {
  online_instance inst = small_online();
  inst.sellers[0].t_depart = 1;  // seller 0 absent from round 2
  const auto ref = offline_exact(inst);
  ASSERT_TRUE(ref.feasible);
  EXPECT_DOUBLE_EQ(ref.cost, 3.0 + 4.0);
}

TEST(OfflineExact, InfeasibleWhenNoSellerPresent) {
  online_instance inst = small_online();
  inst.sellers[0].t_depart = 1;
  inst.sellers[1].t_depart = 1;  // nobody can serve round 2
  const auto ref = offline_exact(inst);
  EXPECT_FALSE(ref.feasible);
}

TEST(OfflineLpBound, LowerBoundsOfflineExact) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    rng gen(seed);
    online_config cfg;
    cfg.stage.sellers = 4;
    cfg.stage.demanders = 2;
    cfg.stage.bids_per_seller = 1;
    cfg.rounds = 3;
    cfg.capacity_lo = 3;
    cfg.capacity_hi = 6;
    const auto inst = random_online_instance(cfg, gen);
    const auto ref = offline_exact(inst, 500000);
    if (!ref.exact || !ref.feasible) continue;
    const double bound = offline_lp_bound(inst);
    EXPECT_LE(bound, ref.cost + 1e-6) << "seed " << seed;
  }
}

TEST(OfflineLpBound, DecodesRoundStrideEncoding) {
  const auto ref = offline_exact(small_online());
  for (std::size_t code : ref.chosen) {
    const std::size_t round = code / kRoundStride;
    const std::size_t idx = code % kRoundStride;
    EXPECT_LT(round, 2u);
    EXPECT_LT(idx, 2u);
  }
}

}  // namespace
}  // namespace ecrs::auction
