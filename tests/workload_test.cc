// Unit tests for workload arrival processes, the generator, and traces.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "workload/arrival.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace ecrs::workload {
namespace {

// ---------------------------------------------------------------- arrivals

TEST(PoissonArrivals, MeanInterarrivalMatchesRate) {
  poisson_arrivals p(4.0);
  rng gen(1);
  running_stats s;
  for (int i = 0; i < 20000; ++i) s.add(p.next_interarrival(0.0, gen));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
  EXPECT_DOUBLE_EQ(p.rate_at(123.0), 4.0);
}

TEST(PoissonArrivals, RejectsNonPositiveRate) {
  EXPECT_THROW(poisson_arrivals(0.0), check_error);
}

TEST(DeterministicArrivals, FixedPeriod) {
  deterministic_arrivals d(2.5);
  rng gen(2);
  EXPECT_DOUBLE_EQ(d.next_interarrival(0.0, gen), 2.5);
  EXPECT_DOUBLE_EQ(d.next_interarrival(100.0, gen), 2.5);
  EXPECT_DOUBLE_EQ(d.rate_at(0.0), 0.4);
}

TEST(DiurnalArrivals, RateOscillatesAroundBase) {
  diurnal_arrivals d(10.0, 0.5, 100.0);
  EXPECT_NEAR(d.rate_at(0.0), 10.0, 1e-9);
  EXPECT_NEAR(d.rate_at(25.0), 15.0, 1e-9);  // peak at quarter period
  EXPECT_NEAR(d.rate_at(75.0), 5.0, 1e-9);   // trough at three quarters
}

TEST(DiurnalArrivals, ThinningProducesPositiveGaps) {
  diurnal_arrivals d(10.0, 0.8, 50.0);
  rng gen(3);
  double now = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double gap = d.next_interarrival(now, gen);
    EXPECT_GT(gap, 0.0);
    now += gap;
  }
  // Long-run average rate should be near the base rate.
  EXPECT_NEAR(1000.0 / now, 10.0, 1.5);
}

TEST(DiurnalArrivals, RejectsBadDepth) {
  EXPECT_THROW(diurnal_arrivals(1.0, 1.0, 10.0), check_error);
  EXPECT_THROW(diurnal_arrivals(1.0, -0.1, 10.0), check_error);
}

// --------------------------------------------------------------- generator

TEST(Generator, DeterministicForSameSeed) {
  generator_config cfg;
  cfg.users = 10;
  cfg.microservices = 4;
  cfg.seed = 77;
  generator a(cfg);
  generator b(cfg);
  const auto ra = a.round(0.0, 100.0);
  const auto rb = b.round(0.0, 100.0);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].microservice, rb[i].microservice);
    EXPECT_DOUBLE_EQ(ra[i].arrival_time, rb[i].arrival_time);
  }
}

TEST(Generator, ArrivalsSortedWithinRound) {
  generator_config cfg;
  cfg.users = 50;
  cfg.microservices = 8;
  generator g(cfg);
  const auto batch = g.round(10.0, 60.0);
  for (std::size_t i = 1; i < batch.size(); ++i) {
    EXPECT_LE(batch[i - 1].arrival_time, batch[i].arrival_time);
  }
  for (const request& r : batch) {
    EXPECT_GE(r.arrival_time, 10.0);
    EXPECT_LT(r.arrival_time, 70.0);
    EXPECT_LT(r.microservice, cfg.microservices);
    EXPECT_GT(r.service_demand, 0.0);
  }
}

TEST(Generator, RequestIdsAreUniqueAcrossRounds) {
  generator_config cfg;
  cfg.users = 20;
  cfg.microservices = 5;
  generator g(cfg);
  std::set<std::uint64_t> ids;
  for (int r = 0; r < 3; ++r) {
    for (const request& req : g.round(r * 100.0, 100.0)) {
      EXPECT_TRUE(ids.insert(req.id).second);
    }
  }
}

TEST(Generator, PoissonVolumeMatchesClassMeans) {
  generator_config cfg;
  cfg.users = 100;
  cfg.microservices = 10;
  cfg.sensitive_mean = 5.0;
  cfg.tolerant_mean = 10.0;
  generator g(cfg);
  // Expected ~ users * (5 + 10) per round.
  running_stats per_round;
  for (int r = 0; r < 20; ++r) {
    per_round.add(static_cast<double>(g.round(r * 10.0, 10.0).size()));
  }
  EXPECT_NEAR(per_round.mean(), 1500.0, 60.0);
}

TEST(Generator, QosClassesAssignedByFraction) {
  generator_config cfg;
  cfg.users = 5;
  cfg.microservices = 10;
  cfg.delay_sensitive_fraction = 0.3;
  generator g(cfg);
  int sensitive = 0;
  for (std::uint32_t s = 0; s < cfg.microservices; ++s) {
    if (g.class_of(s) == qos_class::delay_sensitive) ++sensitive;
  }
  EXPECT_EQ(sensitive, 3);
}

TEST(Generator, RequestsTargetMatchingClass) {
  generator_config cfg;
  cfg.users = 30;
  cfg.microservices = 6;
  generator g(cfg);
  for (const request& r : g.round(0.0, 50.0)) {
    EXPECT_EQ(r.qos, g.class_of(r.microservice));
  }
}

TEST(Generator, RoundIntoMatchesRoundExactly) {
  generator_config cfg;
  cfg.users = 40;
  cfg.microservices = 6;
  cfg.seed = 99;
  generator by_value(cfg);
  generator in_place(cfg);
  std::vector<request> batch;
  for (int r = 0; r < 4; ++r) {
    const auto expected = by_value.round(r * 50.0, 50.0);
    in_place.round_into(r * 50.0, 50.0, batch);
    ASSERT_EQ(batch.size(), expected.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].id, expected[i].id);
      EXPECT_EQ(batch[i].user, expected[i].user);
      EXPECT_EQ(batch[i].microservice, expected[i].microservice);
      EXPECT_EQ(batch[i].qos, expected[i].qos);
      EXPECT_EQ(batch[i].arrival_time, expected[i].arrival_time);
      EXPECT_EQ(batch[i].service_demand, expected[i].service_demand);
    }
  }
}

TEST(Generator, RoundIntoReusesCapacityAcrossRounds) {
  generator_config cfg;
  cfg.users = 100;
  cfg.microservices = 10;
  generator g(cfg);
  std::vector<request> batch;
  g.round_into(0.0, 100.0, batch);
  // The first fill reserves from expected_arrivals_per_round() with slack,
  // so steady-state rounds fit in the existing buffer: no reallocation.
  const auto capacity = batch.capacity();
  EXPECT_GE(capacity, batch.size());
  for (int r = 1; r < 10; ++r) {
    g.round_into(r * 100.0, 100.0, batch);
    EXPECT_EQ(batch.capacity(), capacity);
  }
}

TEST(Generator, ExpectedArrivalsPerRoundMatchesEmpiricalMean) {
  generator_config cfg;
  cfg.users = 80;
  cfg.microservices = 8;
  generator g(cfg);
  running_stats per_round;
  std::vector<request> batch;
  for (int r = 0; r < 30; ++r) {
    g.round_into(r * 10.0, 10.0, batch);
    per_round.add(static_cast<double>(batch.size()));
  }
  EXPECT_NEAR(per_round.mean(), g.expected_arrivals_per_round(), 60.0);
}

TEST(Generator, RejectsBadConfig) {
  generator_config cfg;
  cfg.users = 0;
  EXPECT_THROW(generator{cfg}, check_error);
  cfg.users = 1;
  cfg.microservices = 0;
  EXPECT_THROW(generator{cfg}, check_error);
  cfg.microservices = 1;
  cfg.mean_service_demand = 0.0;
  EXPECT_THROW(generator{cfg}, check_error);
}

// ------------------------------------------------------------------- trace

std::vector<request> sample_requests() {
  std::vector<request> reqs;
  for (int i = 0; i < 5; ++i) {
    request r;
    r.id = static_cast<std::uint64_t>(i + 1);
    r.user = static_cast<std::uint32_t>(i % 3);
    r.microservice = static_cast<std::uint32_t>(i % 2);
    r.qos = i % 2 == 0 ? qos_class::delay_sensitive : qos_class::delay_tolerant;
    r.arrival_time = 1.5 * i;
    r.service_demand = 0.25 + i;
    reqs.push_back(r);
  }
  return reqs;
}

TEST(Trace, RoundTripsThroughStream) {
  const auto original = sample_requests();
  std::stringstream ss;
  write_trace(ss, original);
  const auto restored = read_trace(ss);
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].id, original[i].id);
    EXPECT_EQ(restored[i].user, original[i].user);
    EXPECT_EQ(restored[i].microservice, original[i].microservice);
    EXPECT_EQ(restored[i].qos, original[i].qos);
    EXPECT_DOUBLE_EQ(restored[i].arrival_time, original[i].arrival_time);
    EXPECT_DOUBLE_EQ(restored[i].service_demand, original[i].service_demand);
  }
}

TEST(Trace, EmptyTraceRoundTrips) {
  std::stringstream ss;
  write_trace(ss, {});
  EXPECT_TRUE(read_trace(ss).empty());
}

TEST(Trace, RejectsMissingHeader) {
  std::stringstream ss("not,a,header\n1,2,3,0,0.0,1.0\n");
  EXPECT_THROW(read_trace(ss), check_error);
}

TEST(Trace, RejectsWrongFieldCount) {
  std::stringstream ss(
      "id,user,microservice,qos,arrival_time,service_demand\n1,2,3\n");
  EXPECT_THROW(read_trace(ss), check_error);
}

TEST(Trace, RejectsNonNumericFields) {
  std::stringstream ss(
      "id,user,microservice,qos,arrival_time,service_demand\nx,2,3,0,0.0,1\n");
  EXPECT_THROW(read_trace(ss), check_error);
}

TEST(Trace, RejectsBadQos) {
  std::stringstream ss(
      "id,user,microservice,qos,arrival_time,service_demand\n1,2,3,7,0.0,1\n");
  EXPECT_THROW(read_trace(ss), check_error);
}

TEST(Trace, ToleratesCarriageReturnsAndBlankLines) {
  std::stringstream ss(
      "id,user,microservice,qos,arrival_time,service_demand\r\n"
      "1,2,3,0,0.5,1.25\r\n"
      "\n");
  const auto reqs = read_trace(ss);
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].id, 1u);
  EXPECT_DOUBLE_EQ(reqs[0].service_demand, 1.25);
}

TEST(Trace, FileRoundTrip) {
  const auto original = sample_requests();
  const std::string path = testing::TempDir() + "/ecrs_trace_test.csv";
  write_trace_file(path, original);
  const auto restored = read_trace_file(path);
  EXPECT_EQ(restored.size(), original.size());
}

TEST(Trace, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.csv"), check_error);
}

TEST(QosClass, ToStringNames) {
  EXPECT_STREQ(to_string(qos_class::delay_sensitive), "delay_sensitive");
  EXPECT_STREQ(to_string(qos_class::delay_tolerant), "delay_tolerant");
}

// ------------------------------------------------- rate scale + checkpoint

generator_config scaled_config(std::uint64_t seed) {
  generator_config cfg;
  cfg.users = 40;
  cfg.microservices = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(Generator, RateScaleScalesArrivals) {
  generator base(scaled_config(21));
  generator surged(scaled_config(21));
  surged.set_rate_scale(3.0);
  const auto quiet = base.round(0.0, 100.0);
  const auto surge = surged.round(0.0, 100.0);
  ASSERT_GT(quiet.size(), 0u);
  EXPECT_GT(surge.size(), quiet.size());

  generator silenced(scaled_config(21));
  silenced.set_rate_scale(0.0);
  EXPECT_TRUE(silenced.round(0.0, 100.0).empty());

  EXPECT_THROW(base.set_rate_scale(-0.5), ecrs::check_error);
}

TEST(Generator, CheckpointRestoresStreamBitForBit) {
  generator source(scaled_config(22));
  (void)source.round(0.0, 100.0);  // advance the rng past round 1
  source.set_rate_scale(1.5);

  ecrs::checkpoint_writer w;
  source.save(w);
  ecrs::checkpoint_reader r(w.payload());
  generator restored(scaled_config(22));
  restored.load(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_DOUBLE_EQ(restored.rate_scale(), 1.5);

  // The restored generator continues the exact request stream.
  const auto expected = source.round(100.0, 100.0);
  const auto replayed = restored.round(100.0, 100.0);
  ASSERT_EQ(replayed.size(), expected.size());
  ASSERT_GT(expected.size(), 0u);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(replayed[i].id, expected[i].id);
    EXPECT_EQ(replayed[i].microservice, expected[i].microservice);
    EXPECT_EQ(replayed[i].region, expected[i].region);
    EXPECT_EQ(replayed[i].qos, expected[i].qos);
    EXPECT_EQ(replayed[i].arrival_time, expected[i].arrival_time);
    EXPECT_EQ(replayed[i].service_demand, expected[i].service_demand);
  }
}

}  // namespace
}  // namespace ecrs::workload
