// Randomized equivalence fuzz for the compiled CSR auction path
// (auction/compiled.h): across random instances, selection modes, payment
// rules and payment budgets, the compiled default must be bit-identical —
// winners, payments, budget_dropped, certificate — to both bid-vector
// reference paths (ssam_options::eager_reference / legacy_reference). Also
// fuzzes MSOA sessions: compiled cold rounds vs. the legacy per-round path,
// and warm-start patched sessions vs. cold-start sessions on standing bids.
// Registered with the `slow` ctest label.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/online.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/rng.h"
#include "common/simd.h"

namespace ecrs::auction {
namespace {

// Pins a SIMD tier for one scope, restoring the previous tier on exit.
class simd_tier_guard {
 public:
  explicit simd_tier_guard(simd::level l) : prev_(simd::active_level()) {
    installed_ = simd::force(l);
  }
  ~simd_tier_guard() { simd::force(prev_); }
  simd_tier_guard(const simd_tier_guard&) = delete;
  simd_tier_guard& operator=(const simd_tier_guard&) = delete;
  [[nodiscard]] simd::level installed() const { return installed_; }

 private:
  simd::level prev_;
  simd::level installed_;
};

// Bit-level equality of two full mechanism results (EXPECT_EQ on doubles
// is exact comparison — that is the point).
void expect_same_result(const ssam_result& a, const ssam_result& b,
                        const char* what) {
  ASSERT_EQ(a.winners.size(), b.winners.size()) << what;
  for (std::size_t pos = 0; pos < a.winners.size(); ++pos) {
    EXPECT_EQ(a.winners[pos].bid_index, b.winners[pos].bid_index)
        << what << " pos " << pos;
    EXPECT_EQ(a.winners[pos].payment, b.winners[pos].payment)
        << what << " pos " << pos;
    EXPECT_EQ(a.winners[pos].utility_at_selection,
              b.winners[pos].utility_at_selection)
        << what << " pos " << pos;
    EXPECT_EQ(a.winners[pos].ratio_at_selection,
              b.winners[pos].ratio_at_selection)
        << what << " pos " << pos;
  }
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.social_cost, b.social_cost) << what;
  EXPECT_EQ(a.total_payment, b.total_payment) << what;
  EXPECT_EQ(a.budget_dropped, b.budget_dropped) << what;
  EXPECT_EQ(a.unit_shares, b.unit_shares) << what;
  EXPECT_EQ(a.xi, b.xi) << what;
  EXPECT_EQ(a.harmonic, b.harmonic) << what;
  EXPECT_EQ(a.ratio_bound, b.ratio_bound) << what;
}

void expect_same_round(const msoa_round_outcome& a,
                       const msoa_round_outcome& b, const char* what) {
  EXPECT_EQ(a.round, b.round) << what;
  EXPECT_EQ(a.admitted_bids, b.admitted_bids) << what;
  EXPECT_EQ(a.winner_bids, b.winner_bids) << what;
  EXPECT_EQ(a.true_prices, b.true_prices) << what;
  EXPECT_EQ(a.payments, b.payments) << what;
  EXPECT_EQ(a.social_cost, b.social_cost) << what;
  EXPECT_EQ(a.feasible, b.feasible) << what;
  expect_same_result(a.stage, b.stage, what);
}

instance_config fuzz_config(rng& gen) {
  instance_config cfg;
  cfg.sellers = 4 + gen.uniform_int(0, 40);
  cfg.demanders = 1 + gen.uniform_int(0, 7);
  cfg.bids_per_seller = 1 + gen.uniform_int(0, 3);
  cfg.amount_hi = 1 + gen.uniform_int(0, 9);
  cfg.coverage_fraction = 0.3 + 0.1 * static_cast<double>(gen.uniform_int(0, 6));
  cfg.supply_margin = 0.5 + 0.1 * static_cast<double>(gen.uniform_int(0, 4));
  return cfg;
}

// ------------------------------------------------- single-stage equivalence

TEST(CompiledFuzz, SingleStageMatchesBothReferences) {
  rng gen(0xC0FFEEu);
  ssam_scratch scratch;
  for (int trial = 0; trial < 60; ++trial) {
    const auto inst = random_instance(fuzz_config(gen), gen);
    for (const payment_rule rule :
         {payment_rule::runner_up, payment_rule::critical_value}) {
      // Budget: unlimited, generous, or tight enough to bind sometimes.
      const int budget_kind = gen.uniform_int(0, 2);
      ssam_options opts;
      opts.rule = rule;
      opts.payment_threads = 1;
      opts.self_audit = true;
      if (budget_kind == 1) opts.payment_budget = 1e6;
      if (budget_kind == 2) {
        opts.payment_budget =
            40.0 * static_cast<double>(1 + gen.uniform_int(0, 9));
      }

      ssam_options compiled_opts = opts;
      const auto via_compiled = run_ssam(inst, compiled_opts, &scratch);

      for (const selection_mode mode :
           {selection_mode::eager, selection_mode::lazy}) {
        ssam_options mode_opts = opts;
        mode_opts.selection = mode;
        expect_same_result(via_compiled, run_ssam(inst, mode_opts, &scratch),
                           mode == selection_mode::eager ? "compiled/eager"
                                                         : "compiled/lazy");
      }

      ssam_options eager_ref = opts;
      eager_ref.eager_reference = true;
      expect_same_result(via_compiled, run_ssam(inst, eager_ref, &scratch),
                         "eager_reference");

      ssam_options legacy_ref = opts;
      legacy_ref.legacy_reference = true;
      expect_same_result(via_compiled, run_ssam(inst, legacy_ref, &scratch),
                         "legacy_reference");
    }
  }
}

TEST(CompiledFuzz, SelectionAgreesWithEagerReference) {
  rng gen(0xBADF00Du);
  ssam_scratch scratch;
  for (int trial = 0; trial < 80; ++trial) {
    const auto inst = random_instance(fuzz_config(gen), gen);
    EXPECT_EQ(greedy_selection(inst, &scratch),
              eager_greedy_selection(inst, &scratch))
        << "trial " << trial;
  }
}

// --------------------------------------------------------- MSOA equivalence

TEST(CompiledFuzz, MsoaMatchesLegacyRoundPath) {
  rng gen(0x5EED5u);
  for (int trial = 0; trial < 12; ++trial) {
    online_config cfg;
    cfg.stage = fuzz_config(gen);
    cfg.stage.sellers = 4 + gen.uniform_int(0, 16);
    cfg.rounds = 3 + gen.uniform_int(0, 5);
    cfg.windowed_fraction = 0.1 * static_cast<double>(gen.uniform_int(0, 8));
    cfg.seller_price_bias = 0.1 * static_cast<double>(gen.uniform_int(0, 3));
    const auto instance = random_online_instance(cfg, gen);

    msoa_options compiled_opts;
    compiled_opts.stage.rule = payment_rule::critical_value;
    compiled_opts.stage.payment_threads = 1;
    compiled_opts.stage.self_audit = true;
    msoa_options legacy_opts = compiled_opts;
    legacy_opts.stage.legacy_reference = true;

    const auto via_compiled = run_msoa(instance, compiled_opts);
    const auto via_legacy = run_msoa(instance, legacy_opts);

    ASSERT_EQ(via_compiled.rounds.size(), via_legacy.rounds.size());
    for (std::size_t r = 0; r < via_compiled.rounds.size(); ++r) {
      expect_same_round(via_compiled.rounds[r], via_legacy.rounds[r],
                        "msoa round");
    }
    EXPECT_EQ(via_compiled.social_cost, via_legacy.social_cost);
    EXPECT_EQ(via_compiled.total_payment, via_legacy.total_payment);
    EXPECT_EQ(via_compiled.feasible, via_legacy.feasible);
    EXPECT_EQ(via_compiled.alpha, via_legacy.alpha);
    EXPECT_EQ(via_compiled.psi_final, via_legacy.psi_final);
    EXPECT_EQ(via_compiled.capacity_used, via_legacy.capacity_used);
  }
}

// Standing-bid sessions: the same bid vector every round (the workload the
// warm-start cache targets), requirements re-drawn per round. The warm
// session must patch every round after the first and stay bit-identical to
// both a cold-start compiled session and a legacy-path session.
TEST(CompiledFuzz, WarmStartSessionMatchesColdAndLegacy) {
  rng gen(0xFACADEu);
  for (int trial = 0; trial < 10; ++trial) {
    instance_config cfg = fuzz_config(gen);
    cfg.sellers = 4 + gen.uniform_int(0, 12);
    single_stage_instance base = random_instance(cfg, gen);
    const std::size_t rounds = 4 + gen.uniform_int(0, 4);

    seller_id max_seller = 0;
    for (const bid& b : base.bids) max_seller = std::max(max_seller, b.seller);
    std::vector<seller_profile> profiles(max_seller + 1);
    for (auto& p : profiles) {
      p.capacity = 1000;  // ample: admission never changes across rounds
      p.t_arrive = 1;
      p.t_depart = static_cast<std::uint32_t>(rounds);
    }

    std::vector<single_stage_instance> round_instances;
    for (std::size_t t = 0; t < rounds; ++t) {
      single_stage_instance round = base;
      if (t > 0) {
        for (units& x : round.requirements) {
          x = gen.uniform_int(0, static_cast<int>(x));
        }
      }
      round_instances.push_back(std::move(round));
    }

    msoa_options warm_opts;
    warm_opts.stage.rule = payment_rule::critical_value;
    warm_opts.stage.payment_threads = 1;
    warm_opts.stage.self_audit = true;
    msoa_options cold_opts = warm_opts;
    cold_opts.warm_start = false;
    msoa_options legacy_opts = warm_opts;
    legacy_opts.stage.legacy_reference = true;

    msoa_session warm(profiles, warm_opts);
    msoa_session cold(profiles, cold_opts);
    msoa_session legacy(profiles, legacy_opts);
    for (std::size_t t = 0; t < rounds; ++t) {
      const auto warm_out = warm.run_round(round_instances[t]);
      const auto cold_out = cold.run_round(round_instances[t]);
      const auto legacy_out = legacy.run_round(round_instances[t]);
      expect_same_round(warm_out, cold_out, "warm vs cold");
      expect_same_round(warm_out, legacy_out, "warm vs legacy");
      for (seller_id s = 0; s <= max_seller; ++s) {
        EXPECT_EQ(warm.psi(s), cold.psi(s)) << "seller " << s;
        EXPECT_EQ(warm.capacity_used(s), cold.capacity_used(s))
            << "seller " << s;
      }
    }
    EXPECT_EQ(warm.warm_rounds(), rounds - 1) << "trial " << trial;
    EXPECT_EQ(cold.warm_rounds(), 0u);
    EXPECT_EQ(legacy.warm_rounds(), 0u);
  }
}

// ------------------------------------------------------- SIMD tier sweeps

// When CI pins ECRS_SIMD=off (the forced-scalar lane), the dispatcher must
// actually be on the scalar tier. Registered before any test that calls
// simd::force(), so the lazily-initialized env decision is still in effect.
TEST(CompiledFuzz, SimdEnvOverrideRespected) {
  const char* env = std::getenv("ECRS_SIMD");
  if (env == nullptr) GTEST_SKIP() << "ECRS_SIMD not set";
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "scalar") == 0 ||
      std::strcmp(env, "0") == 0) {
    EXPECT_EQ(simd::active_level(), simd::level::scalar);
  } else if (std::strcmp(env, "sse2") == 0) {
    EXPECT_LE(static_cast<int>(simd::active_level()),
              static_cast<int>(simd::level::sse2));
  }
}

// Every vector tier the CPU supports must reproduce the forced-scalar run
// bit for bit — winners, payments, audit verdicts, certificate — across
// selection modes and payment rules. Instances are drawn so the kernels see
// every interesting shape:
//  - demander counts 8..16 make coverage-row lengths cross
//    simd::kIndexedThreshold and cover every residue of n mod 4 (the widest
//    int64 vector width), so every tail-loop length is exercised;
//  - coverage sizes are uniform in [1, demanders], so CSR row starts land
//    on arbitrary (misaligned) offsets into the coverage arena;
//  - growing seller counts sweep the bid count over every residue mod 4
//    for the ratio_argmin scans.
TEST(CompiledFuzz, SimdTiersBitwiseIdenticalAcrossModes) {
  std::vector<simd::level> tiers;
  for (const simd::level l : {simd::level::sse2, simd::level::avx2}) {
    if (static_cast<int>(l) <= static_cast<int>(simd::max_supported())) {
      tiers.push_back(l);
    }
  }
  if (tiers.empty()) GTEST_SKIP() << "no vector tier on this CPU";

  rng gen(0x51D0CAFEu);
  ssam_scratch scratch;
  for (int trial = 0; trial < 36; ++trial) {
    instance_config cfg = fuzz_config(gen);
    cfg.demanders = 8 + static_cast<std::size_t>(trial % 9);
    cfg.sellers = 5 + static_cast<std::size_t>(trial);
    cfg.coverage_fraction = 1.0;
    const auto inst = random_instance(cfg, gen);

    for (const payment_rule rule :
         {payment_rule::runner_up, payment_rule::critical_value}) {
      ssam_options opts;
      opts.rule = rule;
      opts.payment_threads = 1;
      opts.self_audit = true;

      ssam_result scalar_eager, scalar_lazy;
      {
        const simd_tier_guard pin(simd::level::scalar);
        ASSERT_EQ(pin.installed(), simd::level::scalar);
        ssam_options mode_opts = opts;
        mode_opts.selection = selection_mode::eager;
        scalar_eager = run_ssam(inst, mode_opts, &scratch);
        mode_opts.selection = selection_mode::lazy;
        scalar_lazy = run_ssam(inst, mode_opts, &scratch);
      }
      expect_same_result(scalar_eager, scalar_lazy, "scalar eager/lazy");

      for (const simd::level tier : tiers) {
        const simd_tier_guard pin(tier);
        ASSERT_EQ(pin.installed(), tier);
        ssam_options mode_opts = opts;
        mode_opts.selection = selection_mode::eager;
        expect_same_result(scalar_eager, run_ssam(inst, mode_opts, &scratch),
                           simd::to_string(tier));
        mode_opts.selection = selection_mode::lazy;
        expect_same_result(scalar_lazy, run_ssam(inst, mode_opts, &scratch),
                           simd::to_string(tier));
      }
    }
  }
}

// Misaligned CSR rows, explicitly: a leading 1-wide bid shifts every later
// row start to an odd uint32 offset, so no vector load in the wide rows is
// naturally aligned. All tiers must still agree with scalar bitwise.
TEST(CompiledFuzz, SimdTiersAgreeOnMisalignedRows) {
  if (simd::max_supported() == simd::level::scalar) {
    GTEST_SKIP() << "no vector tier on this CPU";
  }
  rng gen(0x0DDA117Eu);
  ssam_scratch scratch;
  for (int trial = 0; trial < 12; ++trial) {
    instance_config cfg;
    cfg.sellers = 9 + static_cast<std::size_t>(trial);
    cfg.demanders = 11 + static_cast<std::size_t>(trial % 5);
    cfg.bids_per_seller = 2;
    cfg.coverage_fraction = 1.0;
    single_stage_instance inst = random_instance(cfg, gen);
    // Force odd row starts: shrink bid 0's coverage to a single demander.
    inst.bids[0].coverage.resize(1);
    inst.validate();

    ssam_options opts;
    opts.rule = payment_rule::critical_value;
    opts.payment_threads = 1;
    opts.self_audit = true;

    ssam_result scalar_out;
    {
      const simd_tier_guard pin(simd::level::scalar);
      scalar_out = run_ssam(inst, opts, &scratch);
    }
    const simd_tier_guard pin(simd::max_supported());
    expect_same_result(scalar_out, run_ssam(inst, opts, &scratch),
                       "misaligned rows");
  }
}

}  // namespace
}  // namespace ecrs::auction
