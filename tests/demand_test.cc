// Unit tests for the demand estimator (paper §III, Eq. 1-2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "demand/estimator.h"

namespace ecrs::demand {
namespace {

edge::round_stats base_stats() {
  edge::round_stats s;
  s.microservice = 0;
  s.round = 1;
  s.received = 10;
  s.served = 8;
  s.arrived_work = 10.0;
  s.served_work = 8.0;
  s.backlog_work = 2.0;
  s.allocation = 1.0;
  s.utilization = 0.5;
  s.mean_wait = 1.0;
  s.cloud_population = 4;
  return s;
}

estimator_config no_smoothing_config() {
  estimator_config cfg = make_default_config();
  cfg.smoothing = 0.0;
  cfg.round_duration = 10.0;
  return cfg;
}

TEST(EstimatorConfig, DefaultWeightsComeFromAhp) {
  const estimator_config cfg = make_default_config();
  // AHP weights (2/7, 1/7, 4/7) -> w = reciprocals.
  EXPECT_NEAR(cfg.w_waiting, 3.5, 1e-9);
  EXPECT_NEAR(cfg.w_processing, 7.0, 1e-9);
  EXPECT_NEAR(cfg.w_request_rate, 1.75, 1e-9);
}

TEST(Estimator, RejectsBadConfig) {
  estimator_config cfg = make_default_config();
  cfg.smoothing = 1.0;
  EXPECT_THROW(estimator{cfg}, check_error);
  cfg = make_default_config();
  cfg.max_utilization = 1.0;
  EXPECT_THROW(estimator{cfg}, check_error);
  cfg = make_default_config();
  cfg.w_waiting = 0.0;
  EXPECT_THROW(estimator{cfg}, check_error);
  cfg = make_default_config();
  cfg.round_duration = 0.0;
  EXPECT_THROW(estimator{cfg}, check_error);
}

TEST(Estimator, DemandIsNonNegative) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.served_work = 100.0;  // massively over-served: processing gap negative
  EXPECT_GE(est.raw_demand(s, 1.0), 0.0);
}

TEST(Estimator, HigherUtilizationRaisesDemand) {
  estimator est(no_smoothing_config());
  edge::round_stats lo = base_stats();
  lo.utilization = 0.2;
  edge::round_stats hi = base_stats();
  hi.utilization = 0.9;
  EXPECT_GT(est.raw_demand(hi, 1.0), est.raw_demand(lo, 1.0));
}

TEST(Estimator, SaturatedUtilizationIsClampedFinite) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.utilization = 1.0;  // would be a division by zero without the clamp
  const double x = est.raw_demand(s, 1.0);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_GT(x, 0.0);
}

TEST(Estimator, LargerProcessingDeficitRaisesDemand) {
  estimator est(no_smoothing_config());
  edge::round_stats small_gap = base_stats();
  small_gap.arrived_work = 10.0;
  small_gap.served_work = 9.0;
  edge::round_stats large_gap = base_stats();
  large_gap.arrived_work = 30.0;
  large_gap.served_work = 9.0;
  EXPECT_GT(est.raw_demand(large_gap, 1.0), est.raw_demand(small_gap, 1.0));
}

TEST(Estimator, DenserCloudLowersRequestRateIndicator) {
  estimator est(no_smoothing_config());
  edge::round_stats sparse = base_stats();
  sparse.cloud_population = 1;
  edge::round_stats dense = base_stats();
  dense.cloud_population = 10;
  const auto vi_sparse = est.indicators(sparse, 1.0);
  const auto vi_dense = est.indicators(dense, 1.0);
  EXPECT_GT(vi_sparse.request_rate, vi_dense.request_rate);
}

TEST(Estimator, AllocationRatioScalesRequestRateIndicator) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  const auto big_amax = est.indicators(s, 10.0);
  const auto small_amax = est.indicators(s, 1.0);
  EXPECT_LT(big_amax.request_rate, small_amax.request_rate);
}

TEST(Estimator, NoArrivalsMeansFullCompletionIndicator) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.received = 0;
  s.served = 0;
  const auto vi = est.indicators(s, 1.0);
  EXPECT_DOUBLE_EQ(vi.waiting, est.config().zeta * 1.0);
}

TEST(Estimator, RejectsZeroRound) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.round = 0;
  EXPECT_THROW(est.indicators(s, 1.0), check_error);
}

TEST(Estimator, SmoothingBlendsHistory) {
  estimator_config cfg = no_smoothing_config();
  cfg.smoothing = 0.5;
  estimator est(cfg);
  edge::round_stats s = base_stats();
  const double first = est.estimate(s, 1.0);
  // Same observation again: smoothed value must be between raw and previous
  // (here they coincide, so the estimate is unchanged).
  const double second = est.estimate(s, 1.0);
  EXPECT_NEAR(first, second, 1e-9);

  // A sudden drop is damped: the smoothed estimate stays above the raw.
  edge::round_stats idle = s;
  idle.utilization = 0.0;
  idle.arrived_work = 0.0;
  idle.backlog_work = 0.0;
  idle.round = 2;
  estimator raw_est(no_smoothing_config());
  const double raw = raw_est.raw_demand(idle, 1.0);
  const double smoothed = est.estimate(idle, 1.0);
  EXPECT_GT(smoothed, raw);
}

TEST(Estimator, LastEstimateTracksHistory) {
  estimator est(no_smoothing_config());
  EXPECT_DOUBLE_EQ(est.last_estimate(0), 0.0);
  edge::round_stats s = base_stats();
  const double x = est.estimate(s, 1.0);
  EXPECT_DOUBLE_EQ(est.last_estimate(0), x);
  est.reset_history();
  EXPECT_DOUBLE_EQ(est.last_estimate(0), 0.0);
}

TEST(Estimator, EstimateRoundUsesMaxAllocation) {
  estimator est(no_smoothing_config());
  edge::round_stats a = base_stats();
  a.microservice = 0;
  a.allocation = 1.0;
  edge::round_stats b = base_stats();
  b.microservice = 1;
  b.allocation = 4.0;
  const auto round_estimates = est.estimate_round({a, b});
  ASSERT_EQ(round_estimates.size(), 2u);
  // Service b holds the max allocation, so its ratio a_i/a_max = 1 while
  // a's is 0.25; all else equal b's request-rate indicator dominates.
  EXPECT_GT(round_estimates[1], round_estimates[0]);
}

TEST(Estimator, OverloadedServiceScoresHigherThanIdle) {
  estimator est(no_smoothing_config());
  edge::round_stats overloaded = base_stats();
  overloaded.utilization = 0.9;
  overloaded.arrived_work = 50.0;
  overloaded.served_work = 10.0;
  overloaded.backlog_work = 40.0;
  overloaded.served = 2;
  overloaded.received = 10;

  edge::round_stats idle = base_stats();
  idle.utilization = 0.05;
  idle.arrived_work = 1.0;
  idle.served_work = 1.0;
  idle.backlog_work = 0.0;
  idle.served = 10;
  idle.received = 10;

  EXPECT_GT(est.raw_demand(overloaded, 1.0), est.raw_demand(idle, 1.0));
}

}  // namespace
}  // namespace ecrs::demand
