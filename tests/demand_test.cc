// Unit tests for the demand estimator (paper §III, Eq. 1-2) and its
// streaming round API (observe/estimates_into, DESIGN.md section 13).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/checkpoint.h"
#include "common/rng.h"
#include "demand/estimator.h"

namespace ecrs::demand {
namespace {

edge::round_stats base_stats() {
  edge::round_stats s;
  s.microservice = 0;
  s.round = 1;
  s.received = 10;
  s.served = 8;
  s.arrived_work = 10.0;
  s.served_work = 8.0;
  s.backlog_work = 2.0;
  s.allocation = 1.0;
  s.utilization = 0.5;
  s.mean_wait = 1.0;
  s.cloud_population = 4;
  return s;
}

estimator_config no_smoothing_config() {
  estimator_config cfg = make_default_config();
  cfg.smoothing = 0.0;
  cfg.round_duration = 10.0;
  return cfg;
}

TEST(EstimatorConfig, DefaultWeightsComeFromAhp) {
  const estimator_config cfg = make_default_config();
  // AHP weights (2/7, 1/7, 4/7) -> w = reciprocals.
  EXPECT_NEAR(cfg.w_waiting, 3.5, 1e-9);
  EXPECT_NEAR(cfg.w_processing, 7.0, 1e-9);
  EXPECT_NEAR(cfg.w_request_rate, 1.75, 1e-9);
}

TEST(Estimator, RejectsBadConfig) {
  estimator_config cfg = make_default_config();
  cfg.smoothing = 1.0;
  EXPECT_THROW(estimator{cfg}, check_error);
  cfg = make_default_config();
  cfg.max_utilization = 1.0;
  EXPECT_THROW(estimator{cfg}, check_error);
  cfg = make_default_config();
  cfg.w_waiting = 0.0;
  EXPECT_THROW(estimator{cfg}, check_error);
  cfg = make_default_config();
  cfg.round_duration = 0.0;
  EXPECT_THROW(estimator{cfg}, check_error);
}

TEST(Estimator, DemandIsNonNegative) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.served_work = 100.0;  // massively over-served: processing gap negative
  EXPECT_GE(est.raw_demand(s, 1.0), 0.0);
}

TEST(Estimator, HigherUtilizationRaisesDemand) {
  estimator est(no_smoothing_config());
  edge::round_stats lo = base_stats();
  lo.utilization = 0.2;
  edge::round_stats hi = base_stats();
  hi.utilization = 0.9;
  EXPECT_GT(est.raw_demand(hi, 1.0), est.raw_demand(lo, 1.0));
}

TEST(Estimator, SaturatedUtilizationIsClampedFinite) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.utilization = 1.0;  // would be a division by zero without the clamp
  const double x = est.raw_demand(s, 1.0);
  EXPECT_TRUE(std::isfinite(x));
  EXPECT_GT(x, 0.0);
}

TEST(Estimator, LargerProcessingDeficitRaisesDemand) {
  estimator est(no_smoothing_config());
  edge::round_stats small_gap = base_stats();
  small_gap.arrived_work = 10.0;
  small_gap.served_work = 9.0;
  edge::round_stats large_gap = base_stats();
  large_gap.arrived_work = 30.0;
  large_gap.served_work = 9.0;
  EXPECT_GT(est.raw_demand(large_gap, 1.0), est.raw_demand(small_gap, 1.0));
}

TEST(Estimator, DenserCloudLowersRequestRateIndicator) {
  estimator est(no_smoothing_config());
  edge::round_stats sparse = base_stats();
  sparse.cloud_population = 1;
  edge::round_stats dense = base_stats();
  dense.cloud_population = 10;
  const auto vi_sparse = est.indicators(sparse, 1.0);
  const auto vi_dense = est.indicators(dense, 1.0);
  EXPECT_GT(vi_sparse.request_rate, vi_dense.request_rate);
}

TEST(Estimator, AllocationRatioScalesRequestRateIndicator) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  const auto big_amax = est.indicators(s, 10.0);
  const auto small_amax = est.indicators(s, 1.0);
  EXPECT_LT(big_amax.request_rate, small_amax.request_rate);
}

TEST(Estimator, NoArrivalsMeansFullCompletionIndicator) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.received = 0;
  s.served = 0;
  const auto vi = est.indicators(s, 1.0);
  EXPECT_DOUBLE_EQ(vi.waiting, est.config().zeta * 1.0);
}

TEST(Estimator, RejectsZeroRound) {
  estimator est(no_smoothing_config());
  edge::round_stats s = base_stats();
  s.round = 0;
  EXPECT_THROW(est.indicators(s, 1.0), check_error);
}

TEST(Estimator, SmoothingBlendsHistory) {
  estimator_config cfg = no_smoothing_config();
  cfg.smoothing = 0.5;
  estimator est(cfg);
  edge::round_stats s = base_stats();
  const double first = est.estimate(s, 1.0);
  // Same observation again: smoothed value must be between raw and previous
  // (here they coincide, so the estimate is unchanged).
  const double second = est.estimate(s, 1.0);
  EXPECT_NEAR(first, second, 1e-9);

  // A sudden drop is damped: the smoothed estimate stays above the raw.
  edge::round_stats idle = s;
  idle.utilization = 0.0;
  idle.arrived_work = 0.0;
  idle.backlog_work = 0.0;
  idle.round = 2;
  estimator raw_est(no_smoothing_config());
  const double raw = raw_est.raw_demand(idle, 1.0);
  const double smoothed = est.estimate(idle, 1.0);
  EXPECT_GT(smoothed, raw);
}

TEST(Estimator, LastEstimateTracksHistory) {
  estimator est(no_smoothing_config());
  EXPECT_DOUBLE_EQ(est.last_estimate(0), 0.0);
  edge::round_stats s = base_stats();
  const double x = est.estimate(s, 1.0);
  EXPECT_DOUBLE_EQ(est.last_estimate(0), x);
  est.reset_history();
  EXPECT_DOUBLE_EQ(est.last_estimate(0), 0.0);
}

TEST(Estimator, EstimateRoundUsesMaxAllocation) {
  estimator est(no_smoothing_config());
  edge::round_stats a = base_stats();
  a.microservice = 0;
  a.allocation = 1.0;
  edge::round_stats b = base_stats();
  b.microservice = 1;
  b.allocation = 4.0;
  const auto round_estimates = est.estimate_round({a, b});
  ASSERT_EQ(round_estimates.size(), 2u);
  // Service b holds the max allocation, so its ratio a_i/a_max = 1 while
  // a's is 0.25; all else equal b's request-rate indicator dominates.
  EXPECT_GT(round_estimates[1], round_estimates[0]);
}

TEST(Estimator, OverloadedServiceScoresHigherThanIdle) {
  estimator est(no_smoothing_config());
  edge::round_stats overloaded = base_stats();
  overloaded.utilization = 0.9;
  overloaded.arrived_work = 50.0;
  overloaded.served_work = 10.0;
  overloaded.backlog_work = 40.0;
  overloaded.served = 2;
  overloaded.received = 10;

  edge::round_stats idle = base_stats();
  idle.utilization = 0.05;
  idle.arrived_work = 1.0;
  idle.served_work = 1.0;
  idle.backlog_work = 0.0;
  idle.served = 10;
  idle.received = 10;

  EXPECT_GT(est.raw_demand(overloaded, 1.0), est.raw_demand(idle, 1.0));
}

// ---- streaming round API --------------------------------------------------

edge::round_stats fuzzed_stats(rng& gen, std::uint32_t id,
                               std::uint64_t round) {
  edge::round_stats s;
  s.microservice = id;
  s.round = round;
  s.received = static_cast<std::uint64_t>(gen.uniform_int(0, 40));
  s.served = static_cast<std::uint64_t>(
      gen.uniform_int(0, static_cast<long long>(s.received)));
  s.arrived_work = gen.uniform_real(0.0, 50.0);
  s.served_work = gen.uniform_real(0.0, s.arrived_work + 1.0);
  s.backlog_work = gen.uniform_real(0.0, 30.0);
  s.allocation = gen.uniform_real(0.1, 5.0);
  s.utilization = gen.uniform_real(0.0, 1.0);
  s.mean_wait = gen.uniform_real(0.0, 10.0);
  s.cloud_population = static_cast<std::uint32_t>(gen.uniform_int(1, 8));
  return s;
}

estimator_config streaming_config() {
  estimator_config cfg = make_default_config();
  cfg.round_duration = 10.0;
  cfg.trend_smoothing = 0.3;  // exercise the Holt trend path too
  return cfg;
}

// The streaming path and the estimate_round wrapper must be bit-identical
// to the historical per-entry estimate() calls with a precomputed a_max.
TEST(Estimator, StreamingPathBitIdenticalToPerEntryEstimates) {
  rng fuzz(0xfeed);
  for (int trial = 0; trial < 20; ++trial) {
    estimator per_entry(streaming_config());
    estimator streamed(streaming_config());
    estimator wrapped(streaming_config());
    const auto rounds = static_cast<std::uint64_t>(fuzz.uniform_int(1, 6));
    for (std::uint64_t t = 1; t <= rounds; ++t) {
      const auto n = static_cast<std::size_t>(fuzz.uniform_int(1, 12));
      std::vector<edge::round_stats> stats;
      stats.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        stats.push_back(fuzzed_stats(fuzz, static_cast<std::uint32_t>(i), t));
      }
      double a_max = 0.0;
      for (const auto& s : stats) a_max = std::max(a_max, s.allocation);

      std::vector<double> expected;
      expected.reserve(n);
      for (const auto& s : stats) {
        expected.push_back(per_entry.estimate(s, a_max));
      }

      for (const auto& s : stats) streamed.observe(s);
      EXPECT_EQ(streamed.observed(), n);
      std::vector<double> out(n, -1.0);
      streamed.estimates_into(out);

      const std::vector<double> wrapper_out = wrapped.estimate_round(stats);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(out[i], expected[i]) << "trial " << trial << " round " << t
                                       << " entry " << i;
        EXPECT_EQ(wrapper_out[i], expected[i]);
      }
    }
  }
}

TEST(Estimator, StreamingRejectsMisuse) {
  estimator est(streaming_config());
  edge::round_stats s = base_stats();
  est.observe(s);
  std::vector<double> wrong(2);
  EXPECT_THROW(est.estimates_into(wrong), check_error);  // size mismatch
  EXPECT_THROW(est.estimate_round({s}), check_error);    // interleaved
  std::vector<double> right(1);
  est.estimates_into(right);  // drains cleanly after the failures
  EXPECT_EQ(est.rounds_observed(), 1u);

  s.round = 0;
  EXPECT_THROW(est.observe(s), check_error);
}

TEST(Estimator, ForgetAfterDropsStaleEntries) {
  estimator_config cfg = streaming_config();
  cfg.forget_after = 2;
  estimator est(cfg);

  edge::round_stats a = base_stats();
  edge::round_stats b = base_stats();
  b.microservice = 1;
  est.observe(a);
  est.observe(b);
  std::vector<double> two(2);
  est.estimates_into(two);
  EXPECT_EQ(est.history_size(), 2u);
  EXPECT_GT(est.last_estimate(1), 0.0);

  std::vector<double> one(1);
  for (std::uint64_t t = 2; t <= 3; ++t) {
    a.round = t;
    est.observe(a);
    est.estimates_into(one);
  }
  // Id 1 was last seen in round 1; after round 3 it is 2 rounds stale.
  EXPECT_EQ(est.history_size(), 1u);
  EXPECT_EQ(est.last_estimate(1), 0.0);
  EXPECT_GT(est.last_estimate(0), 0.0);
}

// The churn satellite: over a 1e6-round horizon where the live id set
// slides every round, the flat history storage must stop growing once the
// forget window is covered — flat capacity means flat resident set.
TEST(Estimator, ChurningMillionRoundHorizonHoldsFlatCapacity) {
  estimator_config cfg = streaming_config();
  cfg.forget_after = 8;
  estimator est(cfg);

  constexpr std::uint64_t kRounds = 1000000;
  constexpr std::uint32_t kLive = 4;  // ids live per round, sliding window
  edge::round_stats s = base_stats();
  std::vector<double> out(kLive);
  std::size_t warm_capacity = 0;
  for (std::uint64_t t = 1; t <= kRounds; ++t) {
    s.round = t;
    for (std::uint32_t j = 0; j < kLive; ++j) {
      s.microservice = static_cast<std::uint32_t>(t) + j;
      est.observe(s);
    }
    est.estimates_into(out);
    if (t == 4096) warm_capacity = est.history_capacity();
  }
  EXPECT_EQ(est.rounds_observed(), kRounds);
  // Live window + at most forget_after stale generations of kLive ids.
  EXPECT_LE(est.history_size(), (cfg.forget_after + 1) * kLive);
  EXPECT_EQ(est.history_capacity(), warm_capacity);
}

TEST(Estimator, CheckpointRestoresHoltStateBitForBit) {
  rng fuzz(0xbeef);
  estimator source(streaming_config());
  std::vector<double> out(6);
  for (std::uint64_t t = 1; t <= 5; ++t) {
    for (std::uint32_t id = 0; id < 6; ++id) {
      source.observe(fuzzed_stats(fuzz, id, t));
    }
    source.estimates_into(out);
  }

  checkpoint_writer w;
  source.save(w);
  checkpoint_reader r(w.payload());
  estimator restored(streaming_config());
  restored.load(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.rounds_observed(), source.rounds_observed());
  EXPECT_EQ(restored.history_size(), source.history_size());

  // Identical future observations produce identical estimates.
  rng continue_a(0x1234);
  rng continue_b(0x1234);
  std::vector<double> from_source(6);
  std::vector<double> from_restored(6);
  for (std::uint64_t t = 6; t <= 8; ++t) {
    for (std::uint32_t id = 0; id < 6; ++id) {
      source.observe(fuzzed_stats(continue_a, id, t));
      restored.observe(fuzzed_stats(continue_b, id, t));
    }
    source.estimates_into(from_source);
    restored.estimates_into(from_restored);
    for (std::size_t i = 0; i < from_source.size(); ++i) {
      EXPECT_EQ(from_restored[i], from_source[i]);
    }
  }
}

TEST(Estimator, CheckpointRejectsPendingRoundAndShortPayload) {
  estimator est(streaming_config());
  est.observe(base_stats());
  checkpoint_writer w;
  EXPECT_THROW(est.save(w), check_error);  // mid-round checkpoint
  std::vector<double> one(1);
  est.estimates_into(one);

  w.clear();
  est.save(w);
  const std::span<const std::uint8_t> payload = w.payload();
  checkpoint_reader truncated(payload.subspan(0, payload.size() - 1));
  estimator fresh(streaming_config());
  EXPECT_THROW(fresh.load(truncated), check_error);
}

}  // namespace
}  // namespace ecrs::demand
