// Integration tests: the experiment drivers at reduced sizes, asserting the
// qualitative shapes the paper reports, plus the full simulation pipeline.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "harness/experiments.h"

namespace ecrs::harness {
namespace {

sweep_config tiny() {
  sweep_config cfg;
  cfg.trials = 2;
  cfg.seed = 42;
  cfg.demanders = 3;
  return cfg;
}

TEST(Fig3a, RatiosAtLeastOneAndWithinBound) {
  const table t = fig3a_ssam_ratio(tiny(), {5, 10, 15});
  ASSERT_EQ(t.rows(), 6u);  // 3 sizes x J in {1,2}
  for (std::size_t r = 0; r < t.rows(); ++r) {
    const double ratio = t.number_at(r, 2);
    EXPECT_GE(ratio, 1.0 - 1e-9);
    EXPECT_LT(ratio, 5.0);  // far below the worst-case bound in practice
  }
}

TEST(Fig3a, BoundColumnDominatesMeasuredRatio) {
  const table t = fig3a_ssam_ratio(tiny(), {10});
  ASSERT_EQ(t.rows(), 2u);  // J = 1 and J = 2
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GE(t.number_at(r, 4), 1.0);                       // W*Xi >= 1
    EXPECT_GE(t.number_at(r, 4), t.number_at(r, 3) - 1e-9);  // >= max ratio
  }
}

TEST(Fig3b, CostsOrderedAndLoadMonotone) {
  const table t = fig3b_ssam_cost(tiny(), {10, 20}, {100, 200});
  ASSERT_EQ(t.rows(), 4u);
  std::map<std::pair<long long, long long>, std::size_t> row_of;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    row_of[{static_cast<long long>(t.number_at(r, 0)),
            static_cast<long long>(t.number_at(r, 1))}] = r;
    // payment >= social cost >= optimal cost.
    EXPECT_GE(t.number_at(r, 3), t.number_at(r, 2) - 1e-9);
    EXPECT_GE(t.number_at(r, 2), t.number_at(r, 4) - 1e-9);
  }
  // Doubling the request load raises the social cost (same seller count).
  EXPECT_GT(t.number_at(row_of[{10, 200}], 2),
            t.number_at(row_of[{10, 100}], 2));
}

TEST(Fig4a, EveryWinnerPaidAtLeastItsPrice) {
  const table t = fig4a_individual_rationality(7, 15);
  ASSERT_GT(t.rows(), 0u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GE(t.number_at(r, 3), t.number_at(r, 2) - 1e-9);  // payment>=price
    EXPECT_GE(t.number_at(r, 4), -1e-9);                     // surplus>=0
  }
}

TEST(Fig4b, RuntimeStaysPolynomialAndFast) {
  const table t = fig4b_runtime(tiny(), {10, 40}, {100});
  ASSERT_EQ(t.rows(), 2u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_LT(t.number_at(r, 2), 100.0);  // paper: < 100 ms
  }
}

TEST(Fig5a, VariantsPresentAndRatiosSane) {
  const table t = fig5a_msoa_ratio_vs_sellers(tiny(), {8}, 4);
  ASSERT_EQ(t.rows(), 4u);  // four variants
  std::map<std::string, double> ratio_of;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    ratio_of[t.text_at(r, 1)] = t.number_at(r, 2);
    EXPECT_GE(t.number_at(r, 2), 1.0 - 1e-6);
  }
  ASSERT_EQ(ratio_of.size(), 4u);
  // Perfect demand estimation beats the noisy base in expectation; with
  // binding capacities the inequality is statistical, so allow slack at
  // this tiny trial count (the bench at full size shows a clear gap).
  EXPECT_LE(ratio_of["MSOA-DA"], ratio_of["MSOA"] * 1.05);
}

TEST(Fig5b, RequestLoadSweepRuns) {
  const table t = fig5b_msoa_ratio_vs_requests(tiny(), {100, 200}, 8, 3);
  ASSERT_EQ(t.rows(), 8u);  // 2 loads x 4 variants
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GT(t.number_at(r, 3), 0.0);  // cost positive
  }
}

TEST(Fig6a, TableShapeAndRatioSanity) {
  const table t = fig6a_rounds_bids(tiny(), {2, 4}, {1, 2}, 8);
  ASSERT_EQ(t.rows(), 4u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GE(t.number_at(r, 2), 1.0 - 1e-6);   // mean ratio
    EXPECT_GE(t.number_at(r, 3), t.number_at(r, 2) - 1e-9);  // max >= mean
  }
}

TEST(Fig6b, PaymentsDominateCostsDominateBound) {
  const table t = fig6b_msoa_cost(tiny(), {8}, {100, 200}, 4);
  ASSERT_EQ(t.rows(), 2u);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GE(t.number_at(r, 3), t.number_at(r, 2) - 1e-9);
    EXPECT_GE(t.number_at(r, 2), t.number_at(r, 4) - 1e-6);
  }
}

TEST(DemandPipeline, OverloadedServicesScoreHigherDemand) {
  const table t = demand_estimation_pipeline(3, 6, 60, 10, 3);
  ASSERT_EQ(t.rows(), 6u);
  double overloaded_sum = 0.0;
  double idle_sum = 0.0;
  std::size_t rows_with_both = 0;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GT(t.number_at(r, 1), 0.0);  // arrivals happened
    const double over = t.number_at(r, 4);
    const double idle = t.number_at(r, 5);
    if (over > 0.0 && idle > 0.0) {
      overloaded_sum += over;
      idle_sum += idle;
      ++rows_with_both;
    }
  }
  if (rows_with_both > 0) {
    EXPECT_GT(overloaded_sum, idle_sum);
  }
}

TEST(DemandPipeline, UtilizationBounded) {
  const table t = demand_estimation_pipeline(5, 4, 40, 8, 2);
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_GE(t.number_at(r, 7), 0.0);
    EXPECT_LE(t.number_at(r, 7), 1.0 + 1e-9);
  }
}

TEST(AblationBounds, EveryMeasurementWithinProvenBound) {
  const table t = ablation_bounds(tiny(), {1, 2});
  ASSERT_EQ(t.rows(), 4u);  // 2 stages x 2 J values
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_EQ(t.text_at(r, 5), "yes") << t.text_at(r, 0) << " J=" << r;
  }
}

TEST(BaselineComparison, AuctionAlwaysFeasiblePostedPriceFragile) {
  const table t = baseline_comparison(tiny(), {0.5, 3.0});
  ASSERT_EQ(t.rows(), 3u);  // auction + 2 posted prices
  EXPECT_EQ(t.text_at(0, 0), "SSAM_auction");
  EXPECT_DOUBLE_EQ(t.number_at(0, 3), 1.0);  // auction always clears
  // A low posted price fails to procure; a high one overpays.
  EXPECT_LT(t.number_at(1, 3), 1.0 + 1e-9);
  EXPECT_GE(t.number_at(2, 2), t.number_at(0, 2) - 1e9);  // sanity only
}

TEST(PaymentRules, EfficiencyOrderingHolds) {
  const table t = payment_rules(tiny(), 8);
  ASSERT_EQ(t.rows(), 8u);
  std::map<std::string, std::size_t> row_of;
  for (std::size_t r = 0; r < t.rows(); ++r) row_of[t.text_at(r, 0)] = r;
  // VCG is exactly efficient; everything else costs at least as much.
  EXPECT_NEAR(t.number_at(row_of["VCG_reserve70"], 1), 1.0, 1e-6);
  EXPECT_GE(t.number_at(row_of["SSAM_runner_up"], 1), 1.0 - 1e-9);
  // Local search improves on (or matches) the greedy's cost.
  EXPECT_LE(t.number_at(row_of["greedy+local_search"], 1),
            t.number_at(row_of["SSAM_runner_up"], 1) + 1e-9);
  // Pay-as-bid pays exactly its cost; SSAM pays at least as much.
  EXPECT_GE(t.number_at(row_of["SSAM_runner_up"], 2),
            t.number_at(row_of["pay_as_bid"], 2) - 1e-9);
}

TEST(AblationScaling, TableShapeAndModes) {
  const table t = ablation_scaling(tiny(), {3}, 8);
  ASSERT_EQ(t.rows(), 3u);  // paper_alpha / aggressive / myopic
  std::set<std::string> modes;
  for (std::size_t r = 0; r < t.rows(); ++r) {
    modes.insert(t.text_at(r, 1));
    EXPECT_GT(t.number_at(r, 2), 0.0);                      // cost
    EXPECT_GE(t.number_at(r, 2), t.number_at(r, 4) - 1e-6); // >= bound
  }
  EXPECT_EQ(modes.size(), 3u);
}

TEST(Tables, CsvExportHasHeaderAndRows) {
  const table t = fig4a_individual_rationality(11, 10);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("winner,seller,actual_price,payment,surplus"),
            std::string::npos);
  EXPECT_GT(t.rows(), 0u);
}

}  // namespace
}  // namespace ecrs::harness
