// Tests for the VCG (Clarke pivot) reference mechanism.
#include <gtest/gtest.h>

#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "auction/vcg.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

single_stage_instance duopoly() {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  return inst;
}

TEST(Vcg, PicksOptimalWinnerAndPaysExternality) {
  const auto res = run_vcg(duopoly());
  ASSERT_TRUE(res.feasible);
  ASSERT_TRUE(res.exact);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0], 0u);
  EXPECT_DOUBLE_EQ(res.social_cost, 10.0);
  // Clarke pivot: OPT_{-0} = 12, OPT - c_0 = 0, payment = 12.
  EXPECT_DOUBLE_EQ(res.payments[0], 12.0);
}

TEST(Vcg, MonopolistPaidOwnPrice) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0)};
  const auto res = run_vcg(inst);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.payments.size(), 1u);
  EXPECT_DOUBLE_EQ(res.payments[0], 10.0);
  EXPECT_EQ(res.pivotal_monopolists.size(), 1u);
}

TEST(Vcg, PivotalSellerWithoutFeasibleAlternativeFlagged) {
  single_stage_instance inst;
  inst.requirements = {6};
  // Seller 0 is essential: without it supply is 4 < 6.
  inst.bids = {make_bid(0, {0}, 4, 9.0), make_bid(1, {0}, 4, 8.0)};
  const auto res = run_vcg(inst);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.winners.size(), 2u);
  EXPECT_EQ(res.pivotal_monopolists.size(), 2u);  // both are essential
}

TEST(Vcg, InfeasibleInstanceReported) {
  single_stage_instance inst;
  inst.requirements = {100};
  inst.bids = {make_bid(0, {0}, 1, 1.0)};
  const auto res = run_vcg(inst);
  EXPECT_FALSE(res.feasible);
  EXPECT_TRUE(res.winners.empty());
}

TEST(Vcg, MultiDemanderExternalities) {
  single_stage_instance inst;
  inst.requirements = {2, 2};
  inst.bids = {make_bid(0, {0, 1}, 2, 5.0), make_bid(1, {0}, 2, 3.0),
               make_bid(2, {1}, 2, 3.0)};
  const auto res = run_vcg(inst);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0], 0u);
  // Without seller 0: optimum is 3 + 3 = 6; payment = 6 − (5 − 5) = 6.
  EXPECT_DOUBLE_EQ(res.payments[0], 6.0);
}

class VcgSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VcgSweep, IndividuallyRationalAndEfficient) {
  rng gen(GetParam());
  instance_config cfg;
  cfg.sellers = 7;
  cfg.demanders = 2;
  cfg.bids_per_seller = 2;
  const auto inst = random_instance(cfg, gen);
  const auto vcg = run_vcg(inst);
  if (!vcg.feasible) return;
  ASSERT_TRUE(vcg.exact);
  // Efficiency: VCG's cost never exceeds SSAM's.
  const auto ssam = run_ssam(inst);
  EXPECT_LE(vcg.social_cost, ssam.social_cost + 1e-9);
  // IR: payment covers every winner's price.
  for (std::size_t pos = 0; pos < vcg.winners.size(); ++pos) {
    EXPECT_GE(vcg.payments[pos],
              inst.bids[vcg.winners[pos]].price - 1e-9);
  }
  EXPECT_TRUE(selection_feasible(inst, vcg.winners));
}

TEST_P(VcgSweep, TruthfulUnderRandomMisreports) {
  rng gen(GetParam() + 900);
  instance_config cfg;
  cfg.sellers = 5;
  cfg.demanders = 2;
  cfg.bids_per_seller = 1;
  const auto inst = random_instance(cfg, gen);
  // Reserve-price VCG (reserve above every possible report) so pivotal
  // sellers are paid a report-independent amount; without a reserve they
  // are paid their report, which is exactly the non-truthful fallback the
  // API documents.
  constexpr double kReserve = 80.0;
  constexpr std::size_t kNodes = 4000000;
  const auto truthful = run_vcg(inst, kNodes, kReserve);
  if (!truthful.feasible) return;

  // Utility of each seller when truthful.
  auto utility_of = [&](const vcg_result& res, seller_id s,
                        const single_stage_instance& used) {
    for (std::size_t pos = 0; pos < res.winners.size(); ++pos) {
      if (used.bids[res.winners[pos]].seller == s) {
        // True cost comes from the unmodified instance (same bid index
        // layout by construction below).
        return res.payments[pos] - inst.bids[res.winners[pos]].price;
      }
    }
    return 0.0;
  };

  rng fuzz(GetParam() * 17 + 3);
  for (int trial = 0; trial < 10; ++trial) {
    const auto idx = static_cast<std::size_t>(
        fuzz.uniform_int(0, static_cast<std::int64_t>(inst.bids.size()) - 1));
    single_stage_instance lying = inst;
    lying.bids[idx].price = fuzz.uniform_real(0.0, 70.0);
    const auto res = run_vcg(lying, kNodes, kReserve);
    if (!res.feasible) continue;
    const seller_id s = inst.bids[idx].seller;
    EXPECT_LE(utility_of(res, s, lying),
              utility_of(truthful, s, inst) + 1e-6)
        << "seller " << s << " gained by misreporting";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcgSweep,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(Vcg, ReservePaysPivotalWinnersExactlyTheReserve) {
  single_stage_instance inst;
  inst.requirements = {6};
  inst.bids = {make_bid(0, {0}, 4, 9.0), make_bid(1, {0}, 4, 8.0)};
  const auto res = run_vcg(inst, 4000000, 50.0);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.payments.size(), 2u);
  EXPECT_EQ(res.pivotal_monopolists.size(), 2u);
  EXPECT_DOUBLE_EQ(res.payments[0], 50.0);
  EXPECT_DOUBLE_EQ(res.payments[1], 50.0);
}

TEST(Vcg, ReserveRejectsOverpricedBids) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 60.0)};
  // Seller 1's bid is above the reserve and never participates; seller 0 is
  // then pivotal and is paid the reserve.
  const auto res = run_vcg(inst, 4000000, 50.0);
  ASSERT_TRUE(res.feasible);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0], 0u);
  EXPECT_DOUBLE_EQ(res.payments[0], 50.0);
}

TEST(Vcg, ReserveCanMakeInstanceInfeasible) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 60.0)};
  const auto res = run_vcg(inst, 4000000, 50.0);
  EXPECT_FALSE(res.feasible);
}

TEST(VcgVsSsam, VcgPaysNoLessEfficientOutcome) {
  // Canonical comparison on one instance: VCG cost <= SSAM cost, while
  // payments can order either way (reported in bench/payment_rules).
  rng gen(4);
  instance_config cfg;
  cfg.sellers = 8;
  cfg.demanders = 2;
  const auto inst = random_instance(cfg, gen);
  const auto vcg = run_vcg(inst);
  const auto ssam = run_ssam(inst);
  ASSERT_TRUE(vcg.feasible);
  ASSERT_TRUE(ssam.feasible);
  EXPECT_LE(vcg.social_cost, ssam.social_cost + 1e-9);
}

}  // namespace
}  // namespace ecrs::auction
