// Cross-mechanism fuzz/stress suite: broad random configurations, every
// solver run on the same instance, and the invariants that tie them
// together. Catches disagreements between the greedy, the exact solvers,
// the LP bound, the payment rules, and the serializers.
#include <gtest/gtest.h>

#include <sstream>

#include "auction/baselines.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/io.h"
#include "auction/msoa.h"
#include "auction/properties.h"
#include "auction/settlement.h"
#include "auction/ssam.h"
#include "auction/vcg.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

instance_config fuzz_config(rng& gen) {
  instance_config cfg;
  cfg.sellers = static_cast<std::size_t>(gen.uniform_int(1, 14));
  cfg.demanders = static_cast<std::size_t>(gen.uniform_int(1, 6));
  cfg.bids_per_seller = static_cast<std::size_t>(gen.uniform_int(1, 4));
  cfg.price_lo = gen.uniform_real(0.0, 5.0);
  cfg.price_hi = cfg.price_lo + gen.uniform_real(0.1, 50.0);
  cfg.requirement_lo = gen.uniform_int(0, 5);
  cfg.requirement_hi = cfg.requirement_lo + gen.uniform_int(0, 40);
  cfg.amount_lo = gen.uniform_int(1, 3);
  cfg.amount_hi = cfg.amount_lo + gen.uniform_int(0, 8);
  cfg.coverage_fraction = gen.uniform_real(0.2, 1.0);
  cfg.supply_margin = gen.uniform_real(0.3, 1.0);
  return cfg;
}

class SingleStageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingleStageFuzz, CrossSolverInvariants) {
  rng gen(GetParam() * 2654435761ULL + 17);
  const instance_config cfg = fuzz_config(gen);
  const auto inst = random_instance(cfg, gen);
  ASSERT_NO_THROW(inst.validate());

  // Generator guarantee: every greedy path completes (DESIGN.md §2).
  const auto ssam = run_ssam(inst);
  EXPECT_TRUE(ssam.feasible) << "generator produced a greedy-stranded instance";
  std::vector<std::size_t> winner_indices;
  for (const auto& w : ssam.winners) winner_indices.push_back(w.bid_index);
  EXPECT_TRUE(selection_feasible(inst, winner_indices));

  // IR under both payment rules.
  EXPECT_TRUE(audit_individual_rationality(inst, ssam).ok);
  ssam_options critical;
  critical.rule = payment_rule::critical_value;
  const auto ssam_cv = run_ssam(inst, critical);
  EXPECT_TRUE(audit_individual_rationality(inst, ssam_cv).ok);
  // Both rules select identically (payments differ).
  ASSERT_EQ(ssam.winners.size(), ssam_cv.winners.size());
  for (std::size_t i = 0; i < ssam.winners.size(); ++i) {
    EXPECT_EQ(ssam.winners[i].bid_index, ssam_cv.winners[i].bid_index);
  }

  // The lazy heap must reproduce the eager scan's winner sequence exactly
  // (same order, same tie-breaks), and the full lazy/parallel mechanism must
  // reproduce the legacy serial path bit-for-bit: same winners, same
  // critical-value payments (the bisection tolerance is shared, and every
  // probe decides the same verdict whether or not it exits early).
  EXPECT_EQ(greedy_selection(inst), eager_greedy_selection(inst));
  ssam_options legacy = critical;
  legacy.eager_reference = true;
  legacy.payment_threads = 1;
  const auto ssam_legacy = run_ssam(inst, legacy);
  ASSERT_EQ(ssam_cv.winners.size(), ssam_legacy.winners.size());
  for (std::size_t i = 0; i < ssam_cv.winners.size(); ++i) {
    EXPECT_EQ(ssam_cv.winners[i].bid_index, ssam_legacy.winners[i].bid_index);
    EXPECT_DOUBLE_EQ(ssam_cv.winners[i].payment, ssam_legacy.winners[i].payment);
  }
  EXPECT_DOUBLE_EQ(ssam_cv.total_payment, ssam_legacy.total_payment);

  // Exact solver / LP bound ordering: LP <= OPT <= SSAM <= W·Ξ·OPT.
  const auto opt = solve_exact(inst, 400000);
  if (opt.feasible && opt.exact) {
    EXPECT_LE(opt.cost, ssam.social_cost + 1e-6);
    const double lp = lp_bound(inst);
    EXPECT_LE(lp, opt.cost + 1e-6);
    EXPECT_LE(ssam.social_cost, ssam.ratio_bound * opt.cost + 1e-6);
    // VCG sits at the optimum with IR payments.
    const auto vcg = run_vcg(inst, 400000);
    if (vcg.exact && vcg.feasible) {
      EXPECT_NEAR(vcg.social_cost, opt.cost, 1e-6);
      for (std::size_t pos = 0; pos < vcg.winners.size(); ++pos) {
        EXPECT_GE(vcg.payments[pos],
                  inst.bids[vcg.winners[pos]].price - 1e-9);
      }
    }
  }

  // Settlement never runs a deficit.
  EXPECT_TRUE(settle_round(inst, ssam, 0.1).no_economic_loss());

  // Serialization round-trips to an identical auction outcome.
  std::stringstream ss;
  write_instance(ss, inst);
  const auto restored = read_instance(ss);
  const auto replay = run_ssam(restored);
  EXPECT_EQ(replay.winners.size(), ssam.winners.size());
  EXPECT_DOUBLE_EQ(replay.social_cost, ssam.social_cost);

  // Baselines produce feasible-or-flagged outcomes.
  const auto pab = pay_as_bid_greedy(inst);
  EXPECT_EQ(pab.feasible, ssam.feasible);
  rng pick = gen.fork(3);
  const auto rnd = random_selection(inst, pick);
  if (rnd.feasible) {
    EXPECT_TRUE(selection_feasible(inst, rnd.winners));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleStageFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

class OnlineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineFuzz, MsoaInvariantsOnRandomMarkets) {
  rng gen(GetParam() * 40503ULL + 5);
  online_config cfg;
  cfg.stage = fuzz_config(gen);
  cfg.rounds = static_cast<std::size_t>(gen.uniform_int(1, 8));
  cfg.windowed_fraction = gen.uniform_real(0.0, 1.0);
  cfg.seller_price_bias = gen.uniform_real(0.0, 0.8);
  const auto inst = random_online_instance(cfg, gen);
  ASSERT_NO_THROW(inst.validate());

  const auto res = run_msoa(inst);
  const auto audit = audit_msoa(inst, res);
  EXPECT_TRUE(audit.windows_ok);
  EXPECT_TRUE(audit.capacity_ok);
  EXPECT_TRUE(audit.coverage_ok);
  EXPECT_TRUE(audit.ir_ok);

  // The repair pass guarantees offline feasibility, so the LP bound exists
  // and lower-bounds any feasible online outcome.
  const double bound = offline_lp_bound(inst);
  if (res.feasible) {
    EXPECT_GE(res.social_cost, bound - 1e-6);
  }

  // Online serialization round-trip reproduces the MSOA outcome.
  std::stringstream ss;
  write_online_instance(ss, inst);
  const auto restored = read_online_instance(ss);
  const auto replay = run_msoa(restored);
  EXPECT_DOUBLE_EQ(replay.social_cost, res.social_cost);
  EXPECT_DOUBLE_EQ(replay.total_payment, res.total_payment);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineFuzz,
                         ::testing::Range<std::uint64_t>(1, 26));

class DegenerateFuzz : public ::testing::Test {};

TEST(DegenerateFuzz, AllZeroRequirements) {
  rng gen(1);
  instance_config cfg;
  cfg.requirement_lo = 0;
  cfg.requirement_hi = 0;
  const auto inst = random_instance(cfg, gen);
  const auto res = run_ssam(inst);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.winners.empty());
  const auto opt = solve_exact(inst);
  EXPECT_DOUBLE_EQ(opt.cost, 0.0);
}

TEST(DegenerateFuzz, SingleSellerSingleDemander) {
  rng gen(2);
  instance_config cfg;
  cfg.sellers = 1;
  cfg.demanders = 1;
  cfg.bids_per_seller = 1;
  const auto inst = random_instance(cfg, gen);
  const auto res = run_ssam(inst);
  EXPECT_TRUE(res.feasible);
  const auto opt = solve_exact(inst);
  EXPECT_NEAR(opt.cost, res.social_cost, 1e-9);  // greedy == optimal here
}

TEST(DegenerateFuzz, ZeroPricesAreHandled) {
  single_stage_instance inst;
  inst.requirements = {3};
  bid b;
  b.seller = 0;
  b.coverage = {0};
  b.amount = 3;
  b.price = 0.0;
  inst.bids = {b};
  const auto res = run_ssam(inst);
  EXPECT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.social_cost, 0.0);
  EXPECT_GE(res.winners[0].payment, 0.0);
}

}  // namespace
}  // namespace ecrs::auction
