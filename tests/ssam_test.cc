// Unit and property tests for SSAM (Algorithm 1): greedy selection,
// payments, feasibility, the dual certificate, and Theorem 2/3 behaviour.
#include <gtest/gtest.h>

#include <set>

#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/statistics.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

single_stage_instance two_seller_instance() {
  // One demander needing 4 units; seller 0 offers 4 units at 10, seller 1
  // offers 4 units at 12.
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  return inst;
}

// ---------------------------------------------------------------- selection

TEST(GreedySelection, PicksCheapestSufficientBid) {
  const auto inst = two_seller_instance();
  const auto winners = greedy_selection(inst);
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 0u);
}

TEST(GreedySelection, CombinesSellersWhenNeeded) {
  single_stage_instance inst;
  inst.requirements = {6};
  inst.bids = {make_bid(0, {0}, 4, 8.0), make_bid(1, {0}, 4, 9.0),
               make_bid(2, {0}, 4, 20.0)};
  const auto winners = greedy_selection(inst);
  ASSERT_EQ(winners.size(), 2u);
  EXPECT_EQ(winners[0], 0u);
  EXPECT_EQ(winners[1], 1u);
}

TEST(GreedySelection, AtMostOneBidPerSeller) {
  single_stage_instance inst;
  inst.requirements = {8};
  // Seller 0's two bids are both attractive, but only one may win.
  inst.bids = {make_bid(0, {0}, 4, 1.0, 0), make_bid(0, {0}, 4, 1.1, 1),
               make_bid(1, {0}, 4, 10.0), make_bid(2, {0}, 4, 12.0)};
  const auto winners = greedy_selection(inst);
  std::set<seller_id> sellers;
  for (std::size_t idx : winners) {
    EXPECT_TRUE(sellers.insert(inst.bids[idx].seller).second);
  }
  EXPECT_TRUE(selection_feasible(inst, winners));
}

TEST(GreedySelection, PrefersCostEffectivenessNotPrice) {
  single_stage_instance inst;
  inst.requirements = {10};
  // Bid A: price 10 for 10 units (ratio 1.0); bid B: price 5 for 2 units
  // (ratio 2.5). Greedy must take A first despite its higher price.
  inst.bids = {make_bid(0, {0}, 10, 10.0), make_bid(1, {0}, 2, 5.0)};
  const auto winners = greedy_selection(inst);
  ASSERT_EQ(winners.size(), 1u);
  EXPECT_EQ(winners[0], 0u);
}

TEST(GreedySelection, StopsWhenNothingHelps) {
  single_stage_instance inst;
  inst.requirements = {100};
  inst.bids = {make_bid(0, {0}, 4, 1.0)};
  const auto winners = greedy_selection(inst);
  EXPECT_EQ(winners.size(), 1u);  // partial coverage, then no candidate left
}

TEST(GreedySelection, MultiDemanderCoverage) {
  single_stage_instance inst;
  inst.requirements = {2, 2, 2};
  inst.bids = {make_bid(0, {0, 1, 2}, 2, 9.0),  // covers everything: ratio 1.5
               make_bid(1, {0}, 2, 2.0),        // ratio 1.0
               make_bid(2, {1, 2}, 2, 10.0)};   // ratio 2.5
  const auto winners = greedy_selection(inst);
  // Bid 1 first (ratio 1.0), then bid 0 covers the rest (remaining 4 units,
  // ratio 2.25) beats bid 2 (ratio 2.5).
  ASSERT_EQ(winners.size(), 2u);
  EXPECT_EQ(winners[0], 1u);
  EXPECT_EQ(winners[1], 0u);
}

// ----------------------------------------------------------------- run_ssam

TEST(RunSsam, FeasibleOutcomeOnSatisfiableInstance) {
  const auto inst = two_seller_instance();
  const auto res = run_ssam(inst);
  EXPECT_TRUE(res.feasible);
  EXPECT_DOUBLE_EQ(res.social_cost, 10.0);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_EQ(res.winners[0].utility_at_selection, 4);
  EXPECT_DOUBLE_EQ(res.winners[0].ratio_at_selection, 2.5);
}

TEST(RunSsam, RunnerUpPaymentIsSecondRatioTimesUtility) {
  const auto inst = two_seller_instance();
  const auto res = run_ssam(inst);
  // Runner-up ratio = 12/4 = 3; payment = 4 * 3 = 12.
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_DOUBLE_EQ(res.winners[0].payment, 12.0);
  EXPECT_DOUBLE_EQ(res.total_payment, 12.0);
}

TEST(RunSsam, NoCompetitionFallsBackToPayAsBid) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0)};
  const auto res = run_ssam(inst);
  ASSERT_EQ(res.winners.size(), 1u);
  EXPECT_DOUBLE_EQ(res.winners[0].payment, 10.0);
}

TEST(RunSsam, InfeasibleInstanceFlagged) {
  single_stage_instance inst;
  inst.requirements = {100};
  inst.bids = {make_bid(0, {0}, 1, 1.0)};
  const auto res = run_ssam(inst);
  EXPECT_FALSE(res.feasible);
}

TEST(RunSsam, EmptyRequirementsSelectNothing) {
  single_stage_instance inst;
  inst.requirements = {0, 0};
  inst.bids = {make_bid(0, {0}, 1, 1.0)};
  const auto res = run_ssam(inst);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.winners.empty());
  EXPECT_DOUBLE_EQ(res.social_cost, 0.0);
}

TEST(RunSsam, CriticalValueRuleMatchesThresholdSemantics) {
  const auto inst = two_seller_instance();
  ssam_options opts;
  opts.rule = payment_rule::critical_value;
  const auto res = run_ssam(inst, opts);
  ASSERT_EQ(res.winners.size(), 1u);
  // The winner keeps winning up to price 12 (where seller 1 ties).
  EXPECT_NEAR(res.winners[0].payment, 12.0, 1e-6);
}

TEST(RunSsam, ValidatesInstance) {
  single_stage_instance inst;
  inst.requirements = {1};
  inst.bids = {make_bid(0, {0}, 1, -3.0)};
  EXPECT_THROW(run_ssam(inst), check_error);
}

// --------------------------------------------------------- wins_with_price

TEST(WinsWithPrice, MonotoneInReport) {
  const auto inst = two_seller_instance();
  EXPECT_TRUE(wins_with_price(inst, 0, 10.0));
  EXPECT_TRUE(wins_with_price(inst, 0, 11.9));
  EXPECT_FALSE(wins_with_price(inst, 0, 12.5));
  // The other bid wins once bid 0 prices itself out.
  EXPECT_TRUE(wins_with_price(inst, 1, 9.0));
}

TEST(CriticalValuePayment, ThrowsForLosingBid) {
  const auto inst = two_seller_instance();
  EXPECT_THROW(critical_value_payment(inst, 1), check_error);
}

TEST(CriticalValuePayment, BinarySearchConverges) {
  const auto inst = two_seller_instance();
  const double cv = critical_value_payment(inst, 0);
  EXPECT_NEAR(cv, 12.0, 1e-6);
  EXPECT_TRUE(wins_with_price(inst, 0, cv - 1e-4));
  EXPECT_FALSE(wins_with_price(inst, 0, cv + 1e-4));
}

// ----------------------------------------------------- dual certificate

TEST(DualCertificate, SharesSumToSocialCost) {
  rng gen(5);
  instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  const auto inst = random_instance(cfg, gen);
  const auto res = run_ssam(inst);
  double share_sum = 0.0;
  for (double f : res.unit_shares) share_sum += f;
  EXPECT_NEAR(share_sum, res.social_cost, 1e-6);
}

TEST(DualCertificate, DualObjectiveIsWeakLowerBound) {
  rng gen(6);
  instance_config cfg;
  cfg.sellers = 8;
  cfg.demanders = 2;
  const auto inst = random_instance(cfg, gen);
  const auto res = run_ssam(inst);
  const auto ref = solve_exact(inst);
  ASSERT_TRUE(ref.exact);
  ASSERT_TRUE(ref.feasible);
  // Weak duality: dual objective <= OPT <= SSAM cost.
  EXPECT_LE(res.dual_objective, ref.cost + 1e-6);
  EXPECT_LE(ref.cost, res.social_cost + 1e-6);
}

TEST(DualCertificate, XiIsOneWithUniformShares) {
  single_stage_instance inst;
  inst.requirements = {4};
  inst.bids = {make_bid(0, {0}, 4, 10.0), make_bid(1, {0}, 4, 12.0)};
  const auto res = run_ssam(inst);
  EXPECT_DOUBLE_EQ(res.xi, 1.0);  // one winner => uniform shares
}

// --------------------------------------------- Theorem 3 (property sweep)

struct RatioCase {
  std::uint64_t seed;
  std::size_t bids_per_seller;
};

class SsamApproximationRatio : public ::testing::TestWithParam<RatioCase> {};

TEST_P(SsamApproximationRatio, WithinTheorem3Bound) {
  rng gen(GetParam().seed);
  instance_config cfg;
  cfg.sellers = 9;
  cfg.demanders = 3;
  cfg.bids_per_seller = GetParam().bids_per_seller;
  const auto inst = random_instance(cfg, gen);
  const auto res = run_ssam(inst);
  const auto ref = solve_exact(inst);
  ASSERT_TRUE(ref.exact);
  if (!ref.feasible) return;
  ASSERT_TRUE(res.feasible);
  EXPECT_LE(res.social_cost, res.ratio_bound * ref.cost + 1e-6)
      << "ratio " << res.social_cost / ref.cost << " exceeds W*Xi = "
      << res.ratio_bound;
  EXPECT_GE(res.social_cost, ref.cost - 1e-6);  // never beats the optimum
}

std::vector<RatioCase> ratio_cases() {
  std::vector<RatioCase> cases;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    for (std::size_t j : {1u, 2u, 3u}) {
      cases.push_back({seed, j});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SsamApproximationRatio,
                         ::testing::ValuesIn(ratio_cases()));

// ------------------------------------------------ single-bid special case

TEST(SsamSingleBidPerSeller, CloseToOptimalOnSmallInstances) {
  // Theorem 3 remark: with one bid per seller the ratio is W_i (Xi = 1 is
  // not guaranteed, but small instances should be near-optimal).
  running_stats ratios;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    rng gen(seed);
    instance_config cfg;
    cfg.sellers = 5;
    cfg.demanders = 1;
    cfg.bids_per_seller = 1;
    const auto inst = random_instance(cfg, gen);
    const auto res = run_ssam(inst);
    const auto ref = solve_exact(inst);
    if (!ref.feasible || ref.cost <= 0.0) continue;
    ratios.add(res.social_cost / ref.cost);
  }
  ASSERT_GT(ratios.count(), 10u);
  EXPECT_LT(ratios.mean(), 1.35);
  EXPECT_GE(ratios.min(), 1.0 - 1e-9);
}

// ------------------------------------------- compiled-path equivalence

TEST(CompiledEquivalence, ReferencePathsMatchDefaultOnRandomInstances) {
  // Smoke-level check that the compiled CSR default and both bid-vector
  // reference paths agree bit for bit (tests/compiled_fuzz_test.cc is the
  // heavyweight sweep).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    rng gen(seed);
    instance_config cfg;
    cfg.sellers = 30;
    cfg.demanders = 4;
    const auto inst = random_instance(cfg, gen);
    for (const payment_rule rule :
         {payment_rule::runner_up, payment_rule::critical_value}) {
      ssam_options opts;
      opts.rule = rule;
      opts.payment_threads = 1;
      const auto base = run_ssam(inst, opts);

      ssam_options eager_ref = opts;
      eager_ref.eager_reference = true;
      ssam_options legacy_ref = opts;
      legacy_ref.legacy_reference = true;
      for (const auto& other :
           {run_ssam(inst, eager_ref), run_ssam(inst, legacy_ref)}) {
        ASSERT_EQ(base.winners.size(), other.winners.size());
        for (std::size_t pos = 0; pos < base.winners.size(); ++pos) {
          EXPECT_EQ(base.winners[pos].bid_index, other.winners[pos].bid_index);
          EXPECT_EQ(base.winners[pos].payment, other.winners[pos].payment);
        }
        EXPECT_EQ(base.social_cost, other.social_cost);
        EXPECT_EQ(base.total_payment, other.total_payment);
        EXPECT_EQ(base.feasible, other.feasible);
      }
    }
  }
}

TEST(CompiledEquivalence, SelectionModesAreAPurePerformanceKnob) {
  rng gen(11);
  instance_config cfg;
  cfg.sellers = 25;
  cfg.demanders = 5;
  const auto inst = random_instance(cfg, gen);
  const auto base = greedy_selection(inst);
  EXPECT_EQ(base, eager_greedy_selection(inst));
  for (const selection_mode mode :
       {selection_mode::eager, selection_mode::lazy}) {
    ssam_options opts;
    opts.selection = mode;
    const auto res = run_ssam(inst, opts);
    ASSERT_EQ(res.winners.size(), base.size());
    for (std::size_t pos = 0; pos < base.size(); ++pos) {
      EXPECT_EQ(res.winners[pos].bid_index, base[pos]);
    }
  }
}

TEST(CompiledEquivalence, AtMostOneReferencePathPerCall) {
  const auto inst = two_seller_instance();
  ssam_options opts;
  opts.eager_reference = true;
  opts.legacy_reference = true;
  EXPECT_THROW(run_ssam(inst, opts), check_error);
}

// --------------------------------------------------------------- runtime

TEST(SsamComplexity, GrowsPolynomially) {
  // Smoke test of Theorem 2: doubling the instance should not explode the
  // runtime; also documents that 400-seller instances stay fast.
  rng gen(77);
  instance_config cfg;
  cfg.sellers = 400;
  cfg.demanders = 5;
  const auto inst = random_instance(cfg, gen);
  const auto res = run_ssam(inst);
  EXPECT_TRUE(res.feasible);
}

}  // namespace
}  // namespace ecrs::auction
