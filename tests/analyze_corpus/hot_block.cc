// A hot function must not reach a blocking pool call.
// expect: hot-block
#include <cstddef>

#include "common/annotations.h"

namespace corpus {

void parallel_for(std::size_t n, void (*fn)(std::size_t));

void store(std::size_t i);

void fan_out() { parallel_for(8, store); }

ECRS_HOT void hot_root() { fan_out(); }

}  // namespace corpus
