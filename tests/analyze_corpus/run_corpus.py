#!/usr/bin/env python3
"""Corpus test for tools/ecrs_analyze.

Every .cc/.h in this directory is a tiny TU carrying `// expect: rule-id`
markers. The analyzer (textual front-end, --force-scope so the scope
filters don't hide corpus files) must report, per file, exactly the
expected multiset of rule ids — each diagnostic fires exactly once, with a
stable id, and the clean/escape/suppression files stay silent.

Additionally each .cc must be valid C++ (g++ -fsyntax-only against the
repo's src/ include root), so the corpus can't rot into pseudo-code the
analyzer happens to accept. When libclang is importable the whole corpus
is re-run through the clang front-end (against a synthesized
compile_commands.json) and must produce the identical per-file rule
multisets — the two front-ends are contractually aligned.

Exit 0 on success; prints a diff and exits 1 otherwise.
"""

from __future__ import annotations

import collections
import json
import re
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

CORPUS = Path(__file__).resolve().parent
REPO = CORPUS.parent.parent
ANALYZER = REPO / "tools" / "ecrs_analyze"

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+)")
FINDING_RE = re.compile(r"^(.+?):(\d+): \[([a-z0-9-]+)\]")


def expected_by_file() -> dict[str, collections.Counter]:
    table: dict[str, collections.Counter] = {}
    for path in sorted(CORPUS.iterdir()):
        if path.suffix not in (".cc", ".h"):
            continue
        rules = EXPECT_RE.findall(path.read_text(encoding="utf-8"))
        table[path.name] = collections.Counter(rules)
    return table


def run_analyzer(extra: list[str]) -> tuple[dict[str, collections.Counter], int]:
    cmd = [sys.executable, str(ANALYZER), "--root", str(CORPUS),
           "--force-scope", *extra, str(CORPUS)]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    actual: dict[str, collections.Counter] = collections.defaultdict(
        collections.Counter)
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            actual[Path(m.group(1)).name][m.group(3)] += 1
    if proc.returncode not in (0, 1):
        print(proc.stdout, end="")
        print(proc.stderr, end="", file=sys.stderr)
        raise SystemExit(f"analyzer crashed (exit {proc.returncode})")
    return dict(actual), proc.returncode


def check_frontend(label: str, extra: list[str],
                   expected: dict[str, collections.Counter]) -> bool:
    actual, exit_code = run_analyzer(extra)
    ok = True
    for name, want in sorted(expected.items()):
        got = actual.get(name, collections.Counter())
        if got != want:
            ok = False
            print(f"FAIL [{label}] {name}: expected {dict(want) or 'no '}"
                  f" finding(s), got {dict(got) or 'none'}")
    for name in sorted(set(actual) - set(expected)):
        ok = False
        print(f"FAIL [{label}] {name}: unexpected findings "
              f"{dict(actual[name])}")
    any_expected = any(expected.values())
    if any_expected and exit_code != 1:
        ok = False
        print(f"FAIL [{label}] exit code {exit_code}, expected 1 "
              "(findings present)")
    if ok:
        total = sum(sum(c.values()) for c in expected.values())
        print(f"ok [{label}]: {len(expected)} files, "
              f"{total} expected diagnostics, all exactly once")
    return ok


def check_compiles() -> bool:
    cxx = shutil.which("g++") or shutil.which("c++") or shutil.which("clang++")
    if cxx is None:
        print("skip: no C++ compiler on PATH, corpus validity not checked")
        return True
    ok = True
    for path in sorted(CORPUS.glob("*.cc")) + sorted(CORPUS.glob("*.h")):
        cmd = [cxx, "-std=c++20", "-fsyntax-only",
               "-I", str(REPO / "src"), str(path)]
        if path.suffix == ".h":
            cmd[1:1] = ["-x", "c++"]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            ok = False
            print(f"FAIL {path.name}: not valid C++:\n{proc.stderr}")
    if ok:
        print(f"ok [syntax]: corpus compiles with {Path(cxx).name}")
    return ok


def clang_available() -> bool:
    try:
        from clang import cindex  # noqa: F401
        cindex.Index.create()
        return True
    except Exception:
        return False


def check_clang(expected: dict[str, collections.Counter]) -> bool:
    if not clang_available():
        print("skip: libclang not importable, clang front-end not exercised")
        return True
    with tempfile.TemporaryDirectory() as tmp:
        compdb = Path(tmp) / "compile_commands.json"
        entries = [{
            "directory": str(CORPUS),
            "file": str(path),
            "arguments": ["clang++", "-std=c++20", "-I", str(REPO / "src"),
                          "-c", str(path)],
        } for path in sorted(CORPUS.glob("*.cc"))]
        compdb.write_text(json.dumps(entries))
        return check_frontend(
            "clang", ["--frontend", "clang", "--compdb", str(compdb)],
            expected)


def main() -> int:
    expected = expected_by_file()
    if not expected:
        print("FAIL: corpus directory holds no .cc/.h files")
        return 1
    ok = check_frontend("text", ["--frontend", "text"], expected)
    ok = check_compiles() and ok
    ok = check_clang(expected) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
