// Iterating an unordered container into an order-dependent accumulation is
// run-to-run nondeterministic.
// expect: unordered-iter
#include <unordered_map>

namespace corpus {

double sum_values(const std::unordered_map<int, double>& m) {
  double total = 0.0;
  for (const auto& [key, value] : m) {
    (void)key;
    total += value;
  }
  return total;
}

}  // namespace corpus
