// Regression for member-call resolution: `rec.drain(...)` is a call through
// a member callback, NOT a call to the free function `drain()` below — the
// analyzer must not attribute the free function's allocation to the hot
// path. No findings.
#include <cstddef>

#include "common/annotations.h"

namespace corpus {

int* drain(std::size_t n) { return new int[n]; }

struct record {
  void (*drain)(std::size_t) = nullptr;
};

ECRS_HOT void hot_root(record& rec, std::size_t item) { rec.drain(item); }

}  // namespace corpus
