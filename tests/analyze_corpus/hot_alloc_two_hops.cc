// Transitive allocation: the allocator call is two hops below the hot root,
// so only a call-graph walk (not a per-line grep) can find it.
// expect: hot-alloc
#include <cstddef>

#include "common/annotations.h"

namespace corpus {

int* helper2(std::size_t n) { return new int[n]; }

int* helper1(std::size_t n) { return helper2(n + 1); }

ECRS_HOT int hot_root(std::size_t n) {
  int* p = helper1(n);
  int v = p[0];
  delete[] p;
  return v;
}

}  // namespace corpus
