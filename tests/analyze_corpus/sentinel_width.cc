// Comparing a 64-bit index against the 32-bit kNoIndex sentinel truncates
// or sign-extends; the compare can never be true for values above 2^32.
// expect: sentinel-width
#include <cstdint>

namespace corpus {

inline constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

bool is_missing(std::int64_t idx) { return idx == kNoIndex; }

}  // namespace corpus
