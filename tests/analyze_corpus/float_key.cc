// Containers keyed by float/double make membership depend on rounding.
// expect: float-key
#include <map>
#include <string>

namespace corpus {

std::map<double, std::string> g_by_price;

void remember(double price, const std::string& label) {
  g_by_price[price] = label;
}

}  // namespace corpus
