// A pure hot function over caller-owned buffers: nothing to report.
#include <cstddef>
#include <cstdint>

#include "common/annotations.h"

namespace corpus {

ECRS_HOT std::int64_t dot(const std::int64_t* a, const std::int64_t* b,
                          std::size_t n) {
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

}  // namespace corpus
