// ECRS_HOT_ESCAPE hatch: the growth branch allocates, but it is an audited
// cold branch — the purity walk must not traverse into it. No findings.
#include <cstddef>

#include "common/annotations.h"

namespace corpus {

int* g_buf = nullptr;
std::size_t g_cap = 0;

ECRS_HOT_ESCAPE void grow(std::size_t need) {
  delete[] g_buf;
  g_buf = new int[need * 2];
  g_cap = need * 2;
}

ECRS_HOT int* hot_root(std::size_t need) {
  if (need > g_cap) grow(need);
  return g_buf;
}

}  // namespace corpus
