// A hot function must not take a mutex, even through a helper.
// expect: hot-lock
#include <mutex>

#include "common/annotations.h"

namespace corpus {

int g_value = 0;
std::mutex g_mu;

int guarded_read() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_value;
}

ECRS_HOT int hot_root() { return guarded_read(); }

}  // namespace corpus
