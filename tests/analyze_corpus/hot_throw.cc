// A hot function must not reach a throw expression.
// expect: hot-throw
#include <stdexcept>

#include "common/annotations.h"

namespace corpus {

int checked_div(int a, int b) {
  if (b == 0) throw std::runtime_error("division by zero");
  return a / b;
}

ECRS_HOT int hot_root(int a, int b) { return checked_div(a, b); }

}  // namespace corpus
