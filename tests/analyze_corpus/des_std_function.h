// A DES-layer header storing std::function directly: every schedule copies
// a type-erased callable (possible heap allocation per event). The engine's
// callback type in src/des/callback.h is the sanctioned alias.
// expect: des-std-function
#pragma once

#include <functional>

namespace corpus {

struct bad_event {
  double when = 0.0;
  std::function<void()> fire;
};

}  // namespace corpus
