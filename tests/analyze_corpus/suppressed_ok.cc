// An allow comment at the hot root suppresses a chain finding. No findings.
#include <cstddef>

#include "common/annotations.h"

namespace corpus {

int* make_buffer(std::size_t n) { return new int[n]; }

// Bootstrap-only allocation, audited by hand.
// ecrs-analyze: allow(hot-alloc)
ECRS_HOT int* hot_root(std::size_t n) { return make_buffer(n); }

}  // namespace corpus
