// rand()/time()/random_device are unseeded nondeterminism sources; all
// randomness must flow through ecrs::rng.
// expect: nondet-source
#include <cstdlib>

namespace corpus {

int noisy_pick(int n) { return std::rand() % n; }

}  // namespace corpus
