// Unit tests for the auction core types, coverage state, online instance,
// and the random instance generators.
#include <gtest/gtest.h>

#include "auction/bid.h"
#include "auction/instance_gen.h"
#include "auction/online.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

// ---------------------------------------------------------------- instance

TEST(SingleStageInstance, ValidateAcceptsWellFormed) {
  single_stage_instance inst;
  inst.requirements = {3, 0, 2};
  inst.bids = {make_bid(0, {0, 2}, 2, 10.0), make_bid(1, {1}, 1, 5.0)};
  EXPECT_NO_THROW(inst.validate());
  EXPECT_EQ(inst.demanders(), 3u);
  EXPECT_EQ(inst.seller_count(), 2u);
  EXPECT_EQ(inst.total_requirement(), 5);
}

TEST(SingleStageInstance, ValidateRejectsBadBids) {
  single_stage_instance inst;
  inst.requirements = {3};
  inst.bids = {make_bid(0, {0}, 0, 10.0)};  // zero amount
  EXPECT_THROW(inst.validate(), check_error);
  inst.bids = {make_bid(0, {0}, 1, -1.0)};  // negative price
  EXPECT_THROW(inst.validate(), check_error);
  inst.bids = {make_bid(0, {}, 1, 1.0)};  // empty coverage
  EXPECT_THROW(inst.validate(), check_error);
  inst.bids = {make_bid(0, {5}, 1, 1.0)};  // unknown demander
  EXPECT_THROW(inst.validate(), check_error);
  inst.bids = {make_bid(0, {0, 0}, 1, 1.0)};  // duplicate coverage
  EXPECT_THROW(inst.validate(), check_error);
}

TEST(SingleStageInstance, ValidateRejectsUnsortedCoverage) {
  single_stage_instance inst;
  inst.requirements = {1, 1};
  inst.bids = {make_bid(0, {1, 0}, 1, 1.0)};
  EXPECT_THROW(inst.validate(), check_error);
}

TEST(SingleStageInstance, ValidateRejectsNegativeRequirement) {
  single_stage_instance inst;
  inst.requirements = {-1};
  EXPECT_THROW(inst.validate(), check_error);
}

TEST(SingleStageInstance, CoverableDetectsShortfall) {
  single_stage_instance inst;
  inst.requirements = {10};
  inst.bids = {make_bid(0, {0}, 4, 1.0), make_bid(1, {0}, 4, 1.0)};
  EXPECT_FALSE(inst.coverable());  // max supply 8 < 10
  inst.bids.push_back(make_bid(2, {0}, 4, 1.0));
  EXPECT_TRUE(inst.coverable());  // 12 >= 10
}

TEST(SingleStageInstance, CoverableUsesBestBidPerSeller) {
  single_stage_instance inst;
  inst.requirements = {6};
  // One seller with two bids: only the larger can count once.
  inst.bids = {make_bid(0, {0}, 3, 1.0, 0), make_bid(0, {0}, 5, 2.0, 1)};
  EXPECT_FALSE(inst.coverable());  // best single bid supplies 5 < 6
}

// ---------------------------------------------------------- coverage state

TEST(CoverageState, TracksDeficitAndRemaining) {
  coverage_state state({3, 2});
  EXPECT_EQ(state.deficit(), 5);
  EXPECT_FALSE(state.satisfied());
  EXPECT_EQ(state.remaining(0), 3);
  EXPECT_EQ(state.remaining(1), 2);
}

TEST(CoverageState, MarginalUtilityCapsAtRemaining) {
  coverage_state state({3, 2});
  const bid b = make_bid(0, {0, 1}, 5, 1.0);
  EXPECT_EQ(state.marginal_utility(b), 5);  // min(5,3) + min(5,2)
  state.apply(b);
  EXPECT_TRUE(state.satisfied());
  EXPECT_EQ(state.marginal_utility(b), 0);
}

TEST(CoverageState, ApplyIsIncremental) {
  coverage_state state({4});
  const bid b = make_bid(0, {0}, 3, 1.0);
  EXPECT_EQ(state.apply(b), 3);
  EXPECT_EQ(state.remaining(0), 1);
  EXPECT_EQ(state.apply(b), 1);  // only the remaining unit counts
  EXPECT_TRUE(state.satisfied());
}

TEST(CoverageState, ZeroRequirementsStartSatisfied) {
  coverage_state state({0, 0});
  EXPECT_TRUE(state.satisfied());
}

TEST(CoverageState, RejectsNegativeRequirement) {
  EXPECT_THROW(coverage_state({-1}), check_error);
}

// ----------------------------------------------------------------- online

TEST(OnlineInstance, ValidateChecksWindowsAndSellers) {
  online_instance inst;
  inst.rounds.resize(1);
  inst.rounds[0].requirements = {1};
  inst.rounds[0].bids = {make_bid(0, {0}, 1, 1.0)};
  inst.sellers = {seller_profile{2, 1, 1}};
  EXPECT_NO_THROW(inst.validate());
  EXPECT_TRUE(inst.in_window(0, 1));
  EXPECT_FALSE(inst.in_window(0, 2));

  inst.rounds[0].bids[0].seller = 5;  // unknown seller
  EXPECT_THROW(inst.validate(), check_error);
}

TEST(OnlineInstance, ValidateRejectsEmptyAndBadWindows) {
  online_instance inst;
  EXPECT_THROW(inst.validate(), check_error);  // no rounds
  inst.rounds.resize(1);
  inst.rounds[0].requirements = {0};
  inst.sellers = {seller_profile{1, 3, 2}};  // arrive after depart
  EXPECT_THROW(inst.validate(), check_error);
  inst.sellers = {seller_profile{1, 0, 2}};  // arrives before round 1
  EXPECT_THROW(inst.validate(), check_error);
}

// --------------------------------------------------------------- generator

class RandomInstanceSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomInstanceSeeds, GeneratesValidSatisfiableInstances) {
  rng gen(GetParam());
  instance_config cfg;
  cfg.sellers = 12;
  cfg.demanders = 4;
  cfg.bids_per_seller = 2;
  const auto inst = random_instance(cfg, gen);
  EXPECT_NO_THROW(inst.validate());
  EXPECT_TRUE(inst.coverable());
  EXPECT_EQ(inst.bids.size(), cfg.sellers * cfg.bids_per_seller);
  EXPECT_EQ(inst.demanders(), cfg.demanders);
  for (const bid& b : inst.bids) {
    EXPECT_GE(b.price, cfg.price_lo);
    EXPECT_LE(b.price, cfg.price_hi);
    EXPECT_GE(b.amount, cfg.amount_lo);
    EXPECT_LE(b.amount, cfg.amount_hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceSeeds,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RandomInstance, DeterministicForSameSeed) {
  instance_config cfg;
  rng a(9);
  rng b(9);
  const auto ia = random_instance(cfg, a);
  const auto ib = random_instance(cfg, b);
  ASSERT_EQ(ia.bids.size(), ib.bids.size());
  for (std::size_t i = 0; i < ia.bids.size(); ++i) {
    EXPECT_DOUBLE_EQ(ia.bids[i].price, ib.bids[i].price);
    EXPECT_EQ(ia.bids[i].coverage, ib.bids[i].coverage);
  }
  EXPECT_EQ(ia.requirements, ib.requirements);
}

TEST(RandomInstance, RejectsBadConfig) {
  rng gen(1);
  instance_config cfg;
  cfg.sellers = 0;
  EXPECT_THROW(random_instance(cfg, gen), check_error);
  cfg = instance_config{};
  cfg.price_hi = cfg.price_lo - 1.0;
  EXPECT_THROW(random_instance(cfg, gen), check_error);
  cfg = instance_config{};
  cfg.coverage_fraction = 0.0;
  EXPECT_THROW(random_instance(cfg, gen), check_error);
}

class RandomOnlineSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomOnlineSeeds, GeneratesValidOnlineInstances) {
  rng gen(GetParam());
  online_config cfg;
  cfg.stage.sellers = 8;
  cfg.stage.demanders = 3;
  cfg.rounds = 5;
  const auto inst = random_online_instance(cfg, gen);
  EXPECT_NO_THROW(inst.validate());
  EXPECT_EQ(inst.horizon(), 5u);
  EXPECT_EQ(inst.sellers.size(), 8u);
  for (const seller_profile& p : inst.sellers) {
    EXPECT_GE(p.capacity, 1);
    EXPECT_GE(p.t_arrive, 1u);
    EXPECT_LE(p.t_depart, 5u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOnlineSeeds,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(RandomOnline, ExplicitCapacityRangeRespected) {
  rng gen(3);
  online_config cfg;
  cfg.stage.sellers = 6;
  cfg.rounds = 4;
  cfg.capacity_lo = 7;
  cfg.capacity_hi = 9;
  const auto inst = random_online_instance(cfg, gen);
  for (const seller_profile& p : inst.sellers) {
    EXPECT_GE(p.capacity, 7);
    EXPECT_LE(p.capacity, 9);
  }
}

TEST(Bid, CoverageSizeIsParticipationWeight) {
  const bid b = make_bid(0, {0, 3, 7}, 2, 1.0);
  EXPECT_EQ(b.coverage_size(), 3u);
}

}  // namespace
}  // namespace ecrs::auction
