// Determinism guarantees of the parallel sweep engine and the reusable SSAM
// workspace:
//  - every ported experiment driver emits a byte-identical table for any
//    thread count (the ISSUE/acceptance gate for harness::sweep_runner);
//  - run_ssam / greedy_selection results are bit-identical with a fresh
//    workspace, a persistent (dirty) workspace, and no workspace at all;
//  - the three selection modes pick identical winners.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/ssam.h"
#include "common/rng.h"
#include "common/table.h"
#include "harness/experiments.h"
#include "harness/internal.h"

namespace ecrs {
namespace {

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts{1, 2};
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw > 2) counts.push_back(hw);
  counts.push_back(0);  // shared pool at hardware width
  return counts;
}

harness::sweep_config tiny(std::size_t threads) {
  harness::sweep_config cfg;
  cfg.trials = 3;
  cfg.seed = 17;
  cfg.demanders = 3;
  cfg.threads = threads;
  return cfg;
}

// ------------------------------------------------- drivers, all thread counts

TEST(SweepDeterminism, Fig3aByteIdentical) {
  const std::string serial =
      harness::fig3a_ssam_ratio(tiny(1), {5, 8}).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::fig3a_ssam_ratio(tiny(t), {5, 8}).to_csv(), serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, Fig3bByteIdentical) {
  const std::string serial =
      harness::fig3b_ssam_cost(tiny(1), {5, 8}, {100, 200}).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::fig3b_ssam_cost(tiny(t), {5, 8}, {100, 200}).to_csv(),
              serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, Fig4bDeterministicColumnsIdentical) {
  // runtime_ms_* are wall-clock; only the deterministic columns must match.
  const auto deterministic_part = [](const table& t) {
    std::string out;
    for (std::size_t r = 0; r < t.rows(); ++r) {
      out += std::to_string(t.number_at(r, 0)) + "," +
             std::to_string(t.number_at(r, 1)) + "," +
             std::to_string(t.number_at(r, 4)) + "," +
             std::to_string(t.number_at(r, 5)) + "\n";
    }
    return out;
  };
  const std::string serial =
      deterministic_part(harness::fig4b_runtime(tiny(1), {5, 8}, {100}));
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(
        deterministic_part(harness::fig4b_runtime(tiny(t), {5, 8}, {100})),
        serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, Fig5aByteIdentical) {
  const std::string serial =
      harness::fig5a_msoa_ratio_vs_sellers(tiny(1), {6}, 3).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::fig5a_msoa_ratio_vs_sellers(tiny(t), {6}, 3).to_csv(),
              serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, Fig5bByteIdentical) {
  const std::string serial =
      harness::fig5b_msoa_ratio_vs_requests(tiny(1), {100, 200}, 6, 3)
          .to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(
        harness::fig5b_msoa_ratio_vs_requests(tiny(t), {100, 200}, 6, 3)
            .to_csv(),
        serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, Fig6aByteIdentical) {
  const std::string serial =
      harness::fig6a_rounds_bids(tiny(1), {2, 3}, {1, 2}, 6).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::fig6a_rounds_bids(tiny(t), {2, 3}, {1, 2}, 6).to_csv(),
              serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, Fig6bByteIdentical) {
  const std::string serial =
      harness::fig6b_msoa_cost(tiny(1), {6}, {100, 200}, 3).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::fig6b_msoa_cost(tiny(t), {6}, {100, 200}, 3).to_csv(),
              serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, AblationBoundsByteIdentical) {
  const std::string serial = harness::ablation_bounds(tiny(1), {1, 2}).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::ablation_bounds(tiny(t), {1, 2}).to_csv(), serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, AblationScalingByteIdentical) {
  const std::string serial =
      harness::ablation_scaling(tiny(1), {3, 4}, 6).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::ablation_scaling(tiny(t), {3, 4}, 6).to_csv(), serial)
        << "threads=" << t;
  }
}

TEST(SweepDeterminism, BaselineComparisonByteIdentical) {
  const std::string serial =
      harness::baseline_comparison(tiny(1), {0.5, 2.0}).to_csv();
  for (const std::size_t t : thread_counts()) {
    EXPECT_EQ(harness::baseline_comparison(tiny(t), {0.5, 2.0}).to_csv(),
              serial)
        << "threads=" << t;
  }
}

// ------------------------------------------------------ scratch reuse fuzz

void expect_same_result(const auction::ssam_result& a,
                        const auction::ssam_result& b, const char* what) {
  ASSERT_EQ(a.winners.size(), b.winners.size()) << what;
  for (std::size_t w = 0; w < a.winners.size(); ++w) {
    EXPECT_EQ(a.winners[w].bid_index, b.winners[w].bid_index) << what;
    EXPECT_EQ(a.winners[w].payment, b.winners[w].payment) << what;
    EXPECT_EQ(a.winners[w].utility_at_selection,
              b.winners[w].utility_at_selection)
        << what;
    EXPECT_EQ(a.winners[w].ratio_at_selection, b.winners[w].ratio_at_selection)
        << what;
  }
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.social_cost, b.social_cost) << what;
  EXPECT_EQ(a.total_payment, b.total_payment) << what;
  EXPECT_EQ(a.budget_dropped, b.budget_dropped) << what;
  EXPECT_EQ(a.unit_shares, b.unit_shares) << what;
  EXPECT_EQ(a.xi, b.xi) << what;
  EXPECT_EQ(a.ratio_bound, b.ratio_bound) << what;
}

TEST(ScratchReuse, FuzzEquivalentToFreshAllocation) {
  rng gen(2024);
  // One persistent workspace across the whole fuzz run: each call sees the
  // previous call's buffer contents (and sizes), which must never leak into
  // results.
  auction::ssam_scratch persistent;
  for (std::size_t iter = 0; iter < 60; ++iter) {
    const auto sellers = static_cast<std::size_t>(gen.uniform_int(2, 14));
    const auto demanders = static_cast<std::size_t>(gen.uniform_int(1, 6));
    const auto bids = static_cast<std::size_t>(gen.uniform_int(1, 3));
    const auto instance = auction::random_instance(
        harness::internal::paper_stage(sellers, demanders, bids), gen);

    auction::ssam_options opts;
    opts.rule = (iter % 2 == 0) ? auction::payment_rule::critical_value
                                : auction::payment_rule::runner_up;
    if (iter % 5 == 0) opts.payment_budget = 200.0 + 40.0 * (iter % 7);

    const auto fresh = auction::run_ssam(instance, opts, nullptr);
    const auto reused = auction::run_ssam(instance, opts, &persistent);
    expect_same_result(fresh, reused, "run_ssam fresh vs persistent scratch");

    EXPECT_EQ(auction::greedy_selection(instance, nullptr),
              auction::greedy_selection(instance, &persistent));
    EXPECT_EQ(auction::eager_greedy_selection(instance, nullptr),
              auction::eager_greedy_selection(instance, &persistent));
  }
}

TEST(ScratchReuse, SelectionModesAgree) {
  rng gen(99);
  auction::ssam_scratch scratch;
  for (std::size_t iter = 0; iter < 40; ++iter) {
    const auto sellers = static_cast<std::size_t>(gen.uniform_int(2, 12));
    const auto instance = auction::random_instance(
        harness::internal::paper_stage(sellers, 4, 2), gen);
    auction::ssam_result results[3];
    const auction::selection_mode modes[3] = {
        auction::selection_mode::automatic, auction::selection_mode::eager,
        auction::selection_mode::lazy};
    for (int m = 0; m < 3; ++m) {
      auction::ssam_options opts;
      opts.rule = (iter % 2 == 0) ? auction::payment_rule::critical_value
                                  : auction::payment_rule::runner_up;
      opts.selection = modes[m];
      results[m] = auction::run_ssam(instance, opts, &scratch);
    }
    expect_same_result(results[0], results[1], "automatic vs eager");
    expect_same_result(results[0], results[2], "automatic vs lazy");
  }
}

TEST(ScratchReuse, MsoaSessionMatchesSerialReference) {
  // run_msoa reuses a session-internal scratch across rounds; re-running the
  // same instance must reproduce itself exactly (the session is fresh each
  // call, so any cross-call difference would implicate the scratch reuse).
  rng gen(7);
  auction::online_config cfg;
  cfg.stage = harness::internal::paper_stage(8, 3, 2);
  cfg.rounds = 4;
  cfg.capacity_lo = 4;
  cfg.capacity_hi = 8;
  const auto truth = auction::random_online_instance(cfg, gen);
  const auto first = auction::run_msoa(truth);
  const auto second = auction::run_msoa(truth);
  ASSERT_EQ(first.rounds.size(), second.rounds.size());
  EXPECT_EQ(first.social_cost, second.social_cost);
  EXPECT_EQ(first.total_payment, second.total_payment);
  EXPECT_EQ(first.psi_final, second.psi_final);
  for (std::size_t r = 0; r < first.rounds.size(); ++r) {
    EXPECT_EQ(first.rounds[r].winner_bids, second.rounds[r].winner_bids);
    EXPECT_EQ(first.rounds[r].payments, second.rounds[r].payments);
  }
}

}  // namespace
}  // namespace ecrs
