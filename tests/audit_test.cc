// Violation-injection tests for the invariant auditor (properties.h).
//
// Each test takes a *valid* mechanism outcome from a seeded instance,
// corrupts exactly one invariant (underpay a winner, break coverage, exceed
// a capacity, ...), and asserts audit_or_throw rejects it with the
// diagnostic naming that invariant. A final set checks the clean outcomes
// pass, so the auditor neither under- nor over-triggers.
#include <gtest/gtest.h>

#include <string>

#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

single_stage_instance seeded_instance(std::uint64_t seed = 0xa0d1) {
  instance_config config;
  config.sellers = 20;
  config.demanders = 4;
  rng gen(seed);
  return random_instance(config, gen);
}

online_instance seeded_online_instance(std::uint64_t seed = 0xa0d2) {
  online_config config;
  config.stage.sellers = 12;
  config.stage.demanders = 3;
  config.rounds = 4;
  rng gen(seed);
  return random_online_instance(config, gen);
}

// The audit diagnostic for a corrupted result, or "" if it (wrongly) passed.
template <typename Instance, typename Result>
std::string audit_diagnostic(const Instance& instance, const Result& result,
                             const audit_options& options = {}) {
  try {
    audit_or_throw(instance, result, options);
  } catch (const check_error& err) {
    return err.what();
  }
  return "";
}

// ------------------------------------------------------------- single stage

class SsamAuditInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = seeded_instance();
    ssam_options options;
    options.rule = payment_rule::critical_value;
    options.self_audit = true;  // the clean run must audit green
    result_ = run_ssam(instance_, options);
    ASSERT_TRUE(result_.feasible);
    ASSERT_GE(result_.winners.size(), 2u);
  }

  single_stage_instance instance_;
  ssam_result result_;
};

TEST_F(SsamAuditInjection, CleanResultPasses) {
  EXPECT_EQ(audit_diagnostic(instance_, result_), "");
}

TEST_F(SsamAuditInjection, UnderpaidWinnerTripsIr) {
  ssam_result bad = result_;
  winning_bid& w = bad.winners.front();
  const double delta =
      w.payment - 0.5 * instance_.bids[w.bid_index].price;
  w.payment -= delta;  // now strictly below the asking price
  bad.total_payment -= delta;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[ir]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, DroppedWinnerTripsCoverage) {
  ssam_result bad = result_;
  const winning_bid last = bad.winners.back();
  bad.winners.pop_back();  // feasible flag now lies about the replay
  bad.social_cost -= instance_.bids[last.bid_index].price;
  bad.total_payment -= last.payment;
  bad.unit_shares.resize(bad.unit_shares.size() -
                         static_cast<std::size_t>(last.utility_at_selection));
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[coverage]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, DuplicateSellerTripsStructure) {
  ssam_result bad = result_;
  bad.winners.push_back(bad.winners.front());
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[structure]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, OutOfRangeBidTripsStructure) {
  ssam_result bad = result_;
  bad.winners.front().bid_index = instance_.bids.size() + 7;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[structure]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, TamperedSocialCostTripsAccounting) {
  ssam_result bad = result_;
  bad.social_cost += 1.0;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[accounting]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, TamperedTotalPaymentTripsAccounting) {
  ssam_result bad = result_;
  bad.total_payment -= 1.0;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[accounting]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, OverchargedBudgetTripsBudget) {
  // The platform believes it gated payments by W, but the realized total
  // (e.g. after a buggy re-verification) exceeds it.
  audit_options options;
  options.payment_budget = 0.9 * result_.total_payment;
  EXPECT_NE(audit_diagnostic(instance_, result_, options).find("audit[budget]"),
            std::string::npos);
}

TEST_F(SsamAuditInjection, ShareCountMismatchTripsCertificate) {
  ssam_result bad = result_;
  bad.unit_shares.push_back(1.0);
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[certificate]"),
            std::string::npos);
}

// ------------------------------------------------------------------- online

class MsoaAuditInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = seeded_online_instance();
    msoa_options options;
    options.stage.self_audit = true;
    result_ = run_msoa(instance_, options);
    winners_total_ = 0;
    for (const msoa_round_outcome& round : result_.rounds) {
      winners_total_ += round.winner_bids.size();
    }
    ASSERT_GE(winners_total_, 1u);
  }

  // First round with at least one winner.
  msoa_round_outcome& round_with_winner(msoa_result& result) {
    for (msoa_round_outcome& round : result.rounds) {
      if (!round.winner_bids.empty()) return round;
    }
    ECRS_CHECK_MSG(false, "no round with winners");
    return result.rounds.front();  // unreachable: the check above throws
  }

  online_instance instance_;
  msoa_result result_;
  std::size_t winners_total_ = 0;
};

TEST_F(MsoaAuditInjection, CleanResultPasses) {
  EXPECT_EQ(audit_diagnostic(instance_, result_), "");
}

TEST_F(MsoaAuditInjection, UnderpaidWinnerTripsIr) {
  msoa_result bad = result_;
  msoa_round_outcome& round = round_with_winner(bad);
  const double delta = round.payments.front() - 0.25;
  round.payments.front() = 0.25;  // below any generated asking price
  bad.total_payment -= delta;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[ir]"),
            std::string::npos);
}

TEST_F(MsoaAuditInjection, ShrunkenCapacityTripsCapacity) {
  // Same outcome, meaner instance: a winning seller suddenly has capacity 0,
  // so the recorded participation exceeds Theta.
  online_instance bad_instance = instance_;
  msoa_round_outcome& round = round_with_winner(result_);
  const bid& b =
      instance_.rounds[round.round - 1].bids[round.winner_bids.front()];
  bad_instance.sellers[b.seller].capacity = 0;
  EXPECT_NE(audit_diagnostic(bad_instance, result_).find("audit[capacity]"),
            std::string::npos);
}

TEST_F(MsoaAuditInjection, ShiftedWindowTripsWindow) {
  // The winning seller's window no longer contains the round it won in.
  online_instance bad_instance = instance_;
  msoa_round_outcome& round = round_with_winner(result_);
  const bid& b =
      instance_.rounds[round.round - 1].bids[round.winner_bids.front()];
  bad_instance.sellers[b.seller].t_arrive = round.round + 1;
  bad_instance.sellers[b.seller].t_depart = round.round + 1;
  EXPECT_NE(audit_diagnostic(bad_instance, result_).find("audit[window]"),
            std::string::npos);
}

TEST_F(MsoaAuditInjection, DroppedWinnerTripsCoverage) {
  msoa_result bad = result_;
  msoa_round_outcome& round = round_with_winner(bad);
  ASSERT_TRUE(round.feasible);
  bad.social_cost -= round.true_prices.back();
  bad.total_payment -= round.payments.back();
  round.social_cost -= round.true_prices.back();
  round.winner_bids.pop_back();
  round.true_prices.pop_back();
  round.payments.pop_back();
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[coverage]"),
            std::string::npos);
}

TEST_F(MsoaAuditInjection, OutOfRangeRoundTripsStructure) {
  msoa_result bad = result_;
  round_with_winner(bad).round =
      static_cast<std::uint32_t>(instance_.rounds.size()) + 3;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[structure]"),
            std::string::npos);
}

TEST_F(MsoaAuditInjection, RaggedPaymentVectorsTripStructure) {
  msoa_result bad = result_;
  round_with_winner(bad).payments.push_back(1.0);
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[structure]"),
            std::string::npos);
}

TEST_F(MsoaAuditInjection, TamperedTotalsTripAccounting) {
  msoa_result bad = result_;
  bad.social_cost += 5.0;
  EXPECT_NE(audit_diagnostic(instance_, bad).find("audit[accounting]"),
            std::string::npos);

  msoa_result bad2 = result_;
  bad2.feasible = !bad2.feasible;
  EXPECT_NE(audit_diagnostic(instance_, bad2).find("audit[accounting]"),
            std::string::npos);
}

// --------------------------------------------------- self-audit integration

TEST(SelfAudit, RunSsamHonoursExplicitOptIn) {
  const auto instance = seeded_instance(0x5e1f);
  ssam_options options;
  options.self_audit = true;
  const auto result = run_ssam(instance, options);  // must not throw
  EXPECT_TRUE(result.feasible);
}

TEST(SelfAudit, DefaultMatchesBuildKind) {
#if !defined(NDEBUG) || defined(ECRS_SANITIZE_BUILD)
  EXPECT_TRUE(kSelfAuditDefault);
#else
  EXPECT_FALSE(kSelfAuditDefault);
#endif
  EXPECT_EQ(ssam_options{}.self_audit, kSelfAuditDefault);
}

}  // namespace
}  // namespace ecrs::auction
