// Sharded marketplace tests (DESIGN.md §12): region-aware generation, the
// global<->local id map, the mailbox drain order, shard/spillover behavior
// on handcrafted markets, and the byte-identity acceptance gate — a
// marketplace horizon must be bitwise identical across thread counts
// {1, 2, hw, 0} and, with spillover disabled, identical to composing plain
// msoa_sessions serially.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "auction/instance_gen.h"
#include "auction/msoa.h"
#include "common/check.h"
#include "common/rng.h"
#include "edge/topology.h"
#include "harness/experiments.h"
#include "market/ingest.h"
#include "market/mailbox.h"
#include "market/marketplace.h"
#include "market/region_map.h"
#include "market/spillover.h"
#include "workload/request.h"

namespace ecrs {
namespace {

using market::marketplace;
using market::marketplace_options;
using market::marketplace_round;
using market::message;
using market::post_office;

// ------------------------------------------------- region-aware generation

TEST(RegionalGen, HonorsPerRegionCounts) {
  auction::instance_config stage;
  stage.sellers = 4;
  stage.demanders = 3;
  auction::regional_config regional;
  regional.regions = 3;
  regional.sellers_per_region = {4, 1, 2};
  regional.demanders_per_region = {3, 2, 1};
  rng gen(7);
  const auto inst = auction::random_regional_instance(stage, regional, gen);
  ASSERT_EQ(inst.region_count(), 3u);
  inst.validate();
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(inst.regions[r].demanders(), regional.demanders_per_region[r]);
    EXPECT_EQ(inst.regions[r].seller_count(),
              regional.sellers_per_region[r]);
  }
}

TEST(RegionalGen, RegionsAreIndependentSubstreams) {
  // Region r draws from gen.fork(r): adding regions must not perturb the
  // existing ones, and the same seed must reproduce them exactly.
  auction::instance_config stage;
  stage.sellers = 5;
  stage.demanders = 3;
  auction::regional_config three;
  three.regions = 3;
  auction::regional_config five;
  five.regions = 5;
  rng gen_a(11);
  rng gen_b(11);
  const auto small = auction::random_regional_instance(stage, three, gen_a);
  const auto large = auction::random_regional_instance(stage, five, gen_b);
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(small.regions[r].bids.size(), large.regions[r].bids.size());
    EXPECT_EQ(small.regions[r].requirements, large.regions[r].requirements);
    for (std::size_t b = 0; b < small.regions[r].bids.size(); ++b) {
      EXPECT_EQ(small.regions[r].bids[b].coverage,
                large.regions[r].bids[b].coverage);
      EXPECT_EQ(small.regions[r].bids[b].price,
                large.regions[r].bids[b].price);
    }
  }
}

TEST(RegionalGen, DemandScaleInflatesRequirements) {
  auction::instance_config stage;
  stage.sellers = 5;
  stage.demanders = 4;
  auction::regional_config flat;
  flat.regions = 2;
  auction::regional_config scaled = flat;
  scaled.demand_scale = 1.5;
  rng gen_a(3);
  rng gen_b(3);
  const auto base = auction::random_regional_instance(stage, flat, gen_a);
  const auto hot = auction::random_regional_instance(stage, scaled, gen_b);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t k = 0; k < base.regions[r].requirements.size(); ++k) {
      EXPECT_GE(hot.regions[r].requirements[k],
                base.regions[r].requirements[k]);
    }
  }
}

// ------------------------------------------------------------- region map

TEST(RegionMap, GlobalLocalRoundTrip) {
  const market::region_map map({2, 0, 3}, {1, 4, 0});
  EXPECT_EQ(map.regions(), 3u);
  EXPECT_EQ(map.seller_count(), 5u);
  EXPECT_EQ(map.demander_count(), 5u);
  EXPECT_EQ(map.sellers_in(1), 0u);
  for (std::uint32_t r = 0; r < map.regions(); ++r) {
    for (std::uint32_t s = 0; s < map.sellers_in(r); ++s) {
      const std::uint32_t g = map.global_seller(r, s);
      EXPECT_EQ(map.region_of_seller(g), r);
      EXPECT_EQ(map.local_seller(g), s);
    }
    for (std::uint32_t k = 0; k < map.demanders_in(r); ++k) {
      const std::uint32_t g = map.global_demander(r, k);
      EXPECT_EQ(map.region_of_demander(g), r);
      EXPECT_EQ(map.local_demander(g), k);
    }
  }
}

TEST(RegionMap, PartitionDropsCrossRegionCoverage) {
  // Two sellers (regions 0, 1), three demanders (0, 1, 1). Seller 0's bid
  // covers demanders of both regions: the foreign entries are dropped.
  auction::single_stage_instance global;
  global.requirements = {4, 6, 2};
  auction::bid b0;
  b0.seller = 0;
  b0.coverage = {0, 1, 2};
  b0.amount = 5;
  b0.price = 10.0;
  auction::bid b1;
  b1.seller = 1;
  b1.index = 1;
  b1.coverage = {1, 2};
  b1.amount = 7;
  b1.price = 9.0;
  global.bids = {b0, b1};

  const std::vector<std::uint32_t> seller_region = {0, 1};
  const std::vector<std::uint32_t> demander_region = {0, 1, 1};
  const auto part =
      market::partition(global, 2, seller_region, demander_region);
  EXPECT_EQ(part.dropped_coverage, 2u);  // b0 loses demanders 1 and 2
  EXPECT_EQ(part.dropped_bids, 0u);
  ASSERT_EQ(part.shards.region_count(), 2u);
  ASSERT_EQ(part.shards.regions[0].bids.size(), 1u);
  EXPECT_EQ(part.shards.regions[0].bids[0].coverage,
            (std::vector<auction::demander_id>{0}));
  ASSERT_EQ(part.shards.regions[1].bids.size(), 1u);
  EXPECT_EQ(part.shards.regions[1].bids[0].coverage,
            (std::vector<auction::demander_id>{0, 1}));
  EXPECT_EQ(part.shards.regions[1].requirements,
            (std::vector<auction::units>{6, 2}));
  EXPECT_EQ(part.map.global_demander(1, 0), 1u);
}

// ---------------------------------------------------------------- mailbox

TEST(Mailbox, DrainsOrderedByToFromSequence) {
  post_office po(3);
  const auto make = [](std::uint32_t from, std::uint32_t to,
                       std::uint32_t tag) {
    message m;
    m.type = message::kind::spill_grant;
    m.from = from;
    m.to = to;
    m.seller = tag;  // tag rides along to observe the order
    return m;
  };
  // Posted "out of order" on purpose.
  po.post(make(2, 0, 1));
  po.post(make(0, 3, 2));
  po.post(make(2, 0, 3));
  po.post(make(1, 0, 4));
  po.post(make(0, 0, 5));
  EXPECT_EQ(po.pending(), 5u);

  std::vector<std::uint32_t> order;
  po.drain([&](const message& m) { order.push_back(m.seller); });
  // to=0: from 0 (tag 5), from 1 (tag 4), from 2 in post order (1, 3);
  // then to=3 (coordinator): tag 2.
  EXPECT_EQ(order, (std::vector<std::uint32_t>{5, 4, 1, 3, 2}));
  EXPECT_EQ(po.pending(), 0u);
}

// ------------------------------------------------------ shard + spillover

// Two regions on a unit ring: region 1 has demand and no sellers, region 0
// has an idle seller. The marketplace must route the deficit through a
// spill request, re-auction it against region 0's spare bid at the
// latency-surcharged price, and charge the helper's capacity.
TEST(Spillover, CoversForeignDeficitAtSurchargedPrice) {
  edge::topology topo = edge::topology::ring(2);

  auction::regional_instance round;
  round.regions.resize(2);
  auction::single_stage_instance& helper = round.regions[0];
  helper.requirements = {0};  // nothing needed locally
  auction::bid spare;
  spare.seller = 0;
  spare.coverage = {0};
  spare.amount = 10;
  spare.price = 4.0;
  helper.bids = {spare};
  auction::single_stage_instance& needy = round.regions[1];
  needy.requirements = {5};  // no local bids at all

  marketplace_options options;
  options.threads = 1;
  options.spillover.cost_per_ms = 0.05;
  marketplace mkt(topo, {{{/*capacity=*/3, 1, 1}}, {}}, options);

  const marketplace_round result = mkt.run_round(round);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.unmet_units, 0);
  ASSERT_EQ(result.spillover.awards.size(), 1u);
  const market::spill_award& award = result.spillover.awards[0];
  EXPECT_EQ(award.demand_region, 1u);
  EXPECT_EQ(award.helper_region, 0u);
  EXPECT_EQ(award.seller, 0u);
  EXPECT_EQ(std::vector<auction::demander_id>(award.covered.begin(),
                                              award.covered.end()),
            (std::vector<auction::demander_id>{0}));
  EXPECT_DOUBLE_EQ(award.latency, 1.0);
  // ask = 4.0 + transfer_cost(1ms * 0.05/unit/ms) * 10 units * 1 demander.
  EXPECT_DOUBLE_EQ(award.ask, 4.5);
  EXPECT_DOUBLE_EQ(award.payment, 4.5);  // no competitor: pay-as-bid
  // The helper's lifetime capacity was charged with the bid's weight.
  EXPECT_EQ(mkt.region(0).session().capacity_used(0), 1);
  ASSERT_EQ(result.spillover.regions.size(), 1u);
  EXPECT_EQ(result.spillover.regions[0].requested, 5);
  EXPECT_EQ(result.spillover.regions[0].granted, 5);
}

TEST(Spillover, LatencyBudgetAndRegionCapBound) {
  edge::topology topo = edge::topology::ring(2);

  auction::regional_instance round;
  round.regions.resize(2);
  round.regions[0].requirements = {0};
  auction::bid spare;
  spare.seller = 0;
  spare.coverage = {0};
  spare.amount = 10;
  spare.price = 4.0;
  round.regions[0].bids = {spare};
  round.regions[1].requirements = {5};

  // The only helper sits at latency 1; a budget below that leaves the
  // deficit unmet. Same with max_regions = 0.
  for (const bool use_latency : {true, false}) {
    marketplace_options options;
    options.threads = 1;
    if (use_latency) {
      options.spillover.max_latency = 0.5;
    } else {
      options.spillover.max_regions = 0;
    }
    marketplace mkt(topo, {{{3, 1, 1}}, {}}, options);
    const marketplace_round result = mkt.run_round(round);
    EXPECT_FALSE(result.feasible);
    EXPECT_EQ(result.unmet_units, 5);
    EXPECT_TRUE(result.spillover.awards.empty());
    EXPECT_EQ(mkt.region(0).session().capacity_used(0), 0);
  }
}

// ------------------------------------------------- byte-identity (gate)

// Everything a round decided, as exact bit patterns.
void digest_round(const marketplace_round& round,
                  std::vector<std::uint64_t>& out) {
  const auto push_double = [&](double v) {
    out.push_back(std::bit_cast<std::uint64_t>(v));
  };
  out.push_back(round.round);
  for (const auto& shard : round.shards) {
    out.push_back(shard.outcome.winner_bids.size());
    for (const std::size_t w : shard.outcome.winner_bids) out.push_back(w);
    for (const double p : shard.outcome.payments) push_double(p);
    for (const double p : shard.outcome.true_prices) push_double(p);
    push_double(shard.outcome.social_cost);
    out.push_back(static_cast<std::uint64_t>(shard.deficit));
  }
  out.push_back(round.spillover.awards.size());
  for (const auto& award : round.spillover.awards) {
    out.push_back(award.demand_region);
    out.push_back(award.helper_region);
    out.push_back(award.seller);
    out.push_back(award.bid_index);
    for (const auto k : award.covered) out.push_back(k);
    out.push_back(static_cast<std::uint64_t>(award.amount));
    push_double(award.ask);
    push_double(award.payment);
  }
  out.push_back(static_cast<std::uint64_t>(round.unmet_units));
  push_double(round.social_cost);
  push_double(round.total_payment);
}

struct market_fixture {
  auction::regional_online_instance input;
  std::vector<auction::regional_instance> rounds;
  edge::topology topo = edge::topology::ring(1);
};

market_fixture spillover_market(std::size_t regions, std::size_t horizon) {
  auction::online_config stage;
  stage.stage.sellers = 6;
  stage.stage.demanders = 3;
  stage.rounds = horizon;
  auction::regional_config regional;
  regional.regions = regions;
  regional.demand_scale = 1.3;
  rng gen(21);
  market_fixture fx;
  fx.input = auction::random_regional_online_instance(stage, regional, gen);
  fx.rounds.resize(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    fx.rounds[t].regions.resize(regions);
    for (std::size_t r = 0; r < regions; ++r) {
      fx.rounds[t].regions[r] = fx.input.regions[r].rounds[t];
    }
  }
  fx.topo = edge::topology::ring(static_cast<std::uint32_t>(regions));
  return fx;
}

std::vector<std::uint64_t> run_digest(const market_fixture& fx,
                                      std::size_t threads) {
  marketplace_options options;
  options.threads = threads;
  options.shard.session.stage.payment_threads = 1;
  std::vector<std::vector<auction::seller_profile>> sellers;
  for (const auto& region : fx.input.regions) {
    sellers.push_back(region.sellers);
  }
  marketplace mkt(fx.topo, std::move(sellers), options);
  std::vector<std::uint64_t> digest;
  marketplace_round result;
  for (const auto& round : fx.rounds) {
    mkt.run_round(round, result);
    digest_round(result, digest);
  }
  return digest;
}

TEST(MarketplaceDeterminism, ByteIdenticalAcrossThreadCounts) {
  const market_fixture fx = spillover_market(/*regions=*/8, /*horizon=*/3);
  const auto reference = run_digest(fx, 1);
  EXPECT_FALSE(reference.empty());
  std::vector<std::size_t> counts{2, 0};
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  if (hw != 1 && hw != 2) counts.push_back(hw);
  for (const std::size_t threads : counts) {
    EXPECT_EQ(run_digest(fx, threads), reference)
        << "digest diverged at threads=" << threads;
  }
}

TEST(MarketplaceDeterminism, MatchesSerialSessionComposition) {
  // With spillover disabled, a marketplace is exactly one independent
  // msoa_session per region: compose them by hand, serially, and compare
  // every field bit for bit.
  const market_fixture fx = spillover_market(/*regions=*/5, /*horizon=*/3);
  marketplace_options options;
  options.threads = 0;  // parallel marketplace vs hand-rolled serial loop
  options.shard.session.stage.payment_threads = 1;
  options.spillover.max_regions = 0;
  std::vector<std::vector<auction::seller_profile>> sellers;
  std::vector<auction::msoa_session> reference;
  for (const auto& region : fx.input.regions) {
    sellers.push_back(region.sellers);
    reference.emplace_back(region.sellers, options.shard.session);
  }
  marketplace mkt(fx.topo, std::move(sellers), options);

  marketplace_round result;
  for (const auto& round : fx.rounds) {
    mkt.run_round(round, result);
    EXPECT_TRUE(result.spillover.awards.empty());
    for (std::size_t r = 0; r < reference.size(); ++r) {
      const auto expected = reference[r].run_round(round.regions[r]);
      const auto& got = result.shards[r].outcome;
      EXPECT_EQ(got.winner_bids, expected.winner_bids);
      EXPECT_EQ(got.payments, expected.payments);
      EXPECT_EQ(got.true_prices, expected.true_prices);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got.social_cost),
                std::bit_cast<std::uint64_t>(expected.social_cost));
      EXPECT_EQ(got.feasible, expected.feasible);
    }
  }
}

TEST(MarketplaceDeterminism, SpilloverReducesUnmetDemand) {
  const market_fixture fx = spillover_market(/*regions=*/8, /*horizon=*/3);
  const auto run_unmet = [&](std::size_t max_regions) {
    marketplace_options options;
    options.threads = 1;
    options.shard.session.stage.payment_threads = 1;
    options.spillover.max_regions = max_regions;
    std::vector<std::vector<auction::seller_profile>> sellers;
    for (const auto& region : fx.input.regions) {
      sellers.push_back(region.sellers);
    }
    marketplace mkt(fx.topo, std::move(sellers), options);
    auction::units unmet = 0;
    marketplace_round result;
    for (const auto& round : fx.rounds) {
      mkt.run_round(round, result);
      unmet += result.unmet_units;
    }
    return unmet;
  };
  const auction::units isolated = run_unmet(0);
  const auction::units assisted = run_unmet(4);
  EXPECT_GT(isolated, 0) << "fixture lost its spillover pressure";
  EXPECT_LT(assisted, isolated);
}

// -------------------------------------------------------- harness driver

TEST(MarketplaceDriver, TableIsThreadCountInvariant) {
  harness::marketplace_config cfg;
  cfg.regions = 6;
  cfg.rounds = 3;
  cfg.threads = 1;
  const auto serial = harness::marketplace_rounds(cfg);
  cfg.threads = 0;
  const auto parallel = harness::marketplace_rounds(cfg);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  ASSERT_EQ(serial.rows(), 3u);
}

TEST(MarketplaceDriver, StreamingTableIsThreadCountInvariant) {
  harness::marketplace_config cfg;
  cfg.regions = 5;
  cfg.rounds = 4;
  cfg.streaming = true;
  cfg.users = 40;
  cfg.threads = 1;
  const auto serial = harness::marketplace_rounds(cfg);
  cfg.threads = 0;
  const auto parallel = harness::marketplace_rounds(cfg);
  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  ASSERT_EQ(serial.rows(), 4u);
}

// ------------------------------------------------ seller_best_index (PR 9)

// The old pick_per_seller scan, verbatim semantics: walk the offers in
// emission order, linear-search the picked list for the offer's seller,
// keep the strictly cheaper bid; candidates were then enumerated per
// seller in ascending id order. The indexed rebuild must reproduce both
// the picked set and that order exactly.
TEST(Spillover, SellerBestIndexMatchesLinearScanOnFuzzedOffers) {
  rng gen(20240908);
  market::seller_best_index index;
  for (int trial = 0; trial < 200; ++trial) {
    const auto sellers =
        static_cast<std::size_t>(gen.uniform_int(1, 12));
    const auto bids = static_cast<std::size_t>(gen.uniform_int(0, 40));
    auction::single_stage_instance local;
    local.requirements = {1};
    std::vector<market::spare_offer> offers;
    for (std::size_t i = 0; i < bids; ++i) {
      auction::bid b;
      b.seller = static_cast<auction::seller_id>(
          gen.uniform_int(0, static_cast<std::int64_t>(sellers) - 1));
      b.index = i;
      b.coverage = {0};
      b.amount = 1;
      // Coarse price grid on purpose: ties must resolve to the lowest bid
      // index, like the scan's strict-< replacement rule.
      b.price = static_cast<double>(gen.uniform_int(1, 4));
      local.bids.push_back(std::move(b));
      if (gen.uniform_int(0, 9) < 7) {
        offers.push_back({i, local.bids.back().seller});
      }
    }

    std::vector<std::pair<auction::seller_id, std::size_t>> picked;
    for (const market::spare_offer& offer : offers) {
      const auto it =
          std::find_if(picked.begin(), picked.end(), [&](const auto& p) {
            return p.first == offer.seller;
          });
      if (it == picked.end()) {
        picked.emplace_back(offer.seller, offer.bid_index);
      } else if (local.bids[offer.bid_index].price <
                 local.bids[it->second].price) {
        it->second = offer.bid_index;
      }
    }
    std::sort(picked.begin(), picked.end());

    index.build(local, offers, sellers);
    ASSERT_EQ(index.sellers().size(), picked.size()) << "trial " << trial;
    for (std::size_t i = 0; i < picked.size(); ++i) {
      EXPECT_EQ(index.sellers()[i], picked[i].first) << "trial " << trial;
      EXPECT_EQ(index.best_bid(picked[i].first), picked[i].second)
          << "trial " << trial;
    }
    for (auction::seller_id s = 0; s < sellers; ++s) {
      const bool has = std::find_if(picked.begin(), picked.end(),
                                    [&](const auto& p) {
                                      return p.first == s;
                                    }) != picked.end();
      if (!has) {
        EXPECT_EQ(index.best_bid(s), market::kNoSpareBid);
      }
    }
  }
}

// ------------------------------------------- streaming partitioner (PR 9)

TEST(RegionMap, StreamingPartitionerMatchesBatchPartitionOnFuzz) {
  rng gen(77);
  market::streaming_partitioner streamer(1);
  for (int trial = 0; trial < 120; ++trial) {
    const auto regions =
        static_cast<std::uint32_t>(gen.uniform_int(1, 5));
    const auto demanders =
        static_cast<std::size_t>(gen.uniform_int(0, 12));
    const auto sellers = static_cast<std::size_t>(gen.uniform_int(1, 6));
    const auto bids = static_cast<std::size_t>(gen.uniform_int(0, 15));

    auction::single_stage_instance global;
    std::vector<std::uint32_t> demander_region(demanders);
    std::vector<std::uint32_t> seller_region(sellers);
    for (std::size_t k = 0; k < demanders; ++k) {
      demander_region[k] =
          static_cast<std::uint32_t>(gen.uniform_int(0, regions - 1));
      global.requirements.push_back(
          static_cast<auction::units>(gen.uniform_int(0, 9)));
    }
    for (std::size_t s = 0; s < sellers; ++s) {
      seller_region[s] =
          static_cast<std::uint32_t>(gen.uniform_int(0, regions - 1));
    }
    for (std::size_t i = 0; i < bids && demanders > 0; ++i) {
      auction::bid b;
      b.seller = static_cast<auction::seller_id>(
          gen.uniform_int(0, static_cast<std::int64_t>(sellers) - 1));
      b.index = i;
      for (std::size_t k = 0; k < demanders; ++k) {
        if (gen.uniform_int(0, 2) == 0) {
          b.coverage.push_back(static_cast<auction::demander_id>(k));
        }
      }
      b.amount = static_cast<auction::units>(gen.uniform_int(1, 8));
      b.price = static_cast<double>(gen.uniform_int(1, 50)) / 4.0;
      global.bids.push_back(std::move(b));
    }

    const market::partitioned_instance batch =
        market::partition(global, regions, seller_region, demander_region);

    streamer = market::streaming_partitioner(regions);
    streamer.begin();
    for (std::size_t k = 0; k < demanders; ++k) {
      streamer.add_demander(demander_region[k], global.requirements[k]);
    }
    for (std::size_t s = 0; s < sellers; ++s) {
      streamer.add_seller(seller_region[s]);
    }
    for (const auction::bid& b : global.bids) streamer.add_bid(b);
    const market::partitioned_instance streamed = streamer.finish();

    ASSERT_EQ(streamed.shards.region_count(), batch.shards.region_count());
    EXPECT_EQ(streamed.dropped_coverage, batch.dropped_coverage);
    EXPECT_EQ(streamed.dropped_bids, batch.dropped_bids);
    for (std::uint32_t r = 0; r < regions; ++r) {
      const auto& want = batch.shards.regions[r];
      const auto& got = streamed.shards.regions[r];
      EXPECT_EQ(got.requirements, want.requirements) << "trial " << trial;
      ASSERT_EQ(got.bids.size(), want.bids.size()) << "trial " << trial;
      for (std::size_t i = 0; i < want.bids.size(); ++i) {
        EXPECT_EQ(got.bids[i].seller, want.bids[i].seller);
        EXPECT_EQ(got.bids[i].index, want.bids[i].index);
        EXPECT_EQ(got.bids[i].coverage, want.bids[i].coverage);
        EXPECT_EQ(got.bids[i].amount, want.bids[i].amount);
        EXPECT_EQ(got.bids[i].price, want.bids[i].price);
      }
      EXPECT_EQ(streamed.map.sellers_in(r), batch.map.sellers_in(r));
      EXPECT_EQ(streamed.map.demanders_in(r), batch.map.demanders_in(r));
    }
  }
}

// ------------------------------------------------- round_ingestor (PR 9)

market::ingest_config small_ingest_config() {
  market::ingest_config icfg;
  icfg.regions = 2;
  icfg.microservices = 5;  // region 0 hosts {0, 2, 4}, region 1 hosts {1, 3}
  icfg.unit_demand = 2.0;
  return icfg;
}

// Standing bids for small_ingest_config: one seller per region whose bid
// covers every local demander with plenty of amount.
auction::regional_instance small_standing() {
  auction::regional_instance standing;
  standing.regions.resize(2);
  for (std::uint32_t r = 0; r < 2; ++r) {
    auction::single_stage_instance& local = standing.regions[r];
    local.requirements.assign(r == 0 ? 3 : 2, 0);
    auction::bid b;
    b.seller = 0;
    for (std::uint32_t k = 0; k < local.requirements.size(); ++k) {
      b.coverage.push_back(k);
    }
    b.amount = 50;
    b.price = 3.0;
    local.bids = {b};
  }
  return standing;
}

workload::request request_for(std::uint32_t microservice, double demand) {
  workload::request q;
  q.microservice = microservice;
  q.region = microservice % 2;
  q.service_demand = demand;
  return q;
}

TEST(Ingest, QuantizeDemandClampsThenScales) {
  market::ingest_config icfg;
  icfg.unit_demand = 2.0;
  EXPECT_EQ(market::quantize_demand(0.0, icfg, market::kNoSupplyCap), 0);
  EXPECT_EQ(market::quantize_demand(-1.0, icfg, market::kNoSupplyCap), 0);
  EXPECT_EQ(market::quantize_demand(0.1, icfg, market::kNoSupplyCap), 1);
  EXPECT_EQ(market::quantize_demand(7.9, icfg, market::kNoSupplyCap), 4);
  icfg.max_requirement = 3;
  EXPECT_EQ(market::quantize_demand(7.9, icfg, market::kNoSupplyCap), 3);
  EXPECT_EQ(market::quantize_demand(7.9, icfg, 2), 2);  // supply cap wins
  icfg.demand_scale = 1.25;  // applied after both clamps, ceil
  EXPECT_EQ(market::quantize_demand(7.9, icfg, 2), 3);
  EXPECT_EQ(market::quantize_demand(7.9, icfg, market::kNoSupplyCap), 4);
}

TEST(Ingest, PlacementAndSupplyCaps) {
  market::ingest_config icfg = small_ingest_config();
  icfg.supply_margin = 0.5;
  const market::round_ingestor ing(icfg, small_standing());
  EXPECT_EQ(ing.demanders_in(0), 3u);
  EXPECT_EQ(ing.demanders_in(1), 2u);
  EXPECT_EQ(ing.region_of(3), 1u);
  EXPECT_EQ(ing.local_demander(3), 1u);
  // guaranteed_supply = the seller's min bid amount (50); cap = floor(.5*50).
  EXPECT_EQ(ing.supply_cap(0, 0), 25);
  EXPECT_EQ(ing.supply_cap(1, 1), 25);
}

TEST(Ingest, MatchesManualQuantization) {
  const market::ingest_config icfg = small_ingest_config();
  market::round_ingestor ing(icfg, small_standing());
  const std::vector<workload::request> batch = {
      request_for(0, 1.5), request_for(3, 4.0), request_for(0, 2.5),
      request_for(4, 0.2), request_for(1, 6.0)};
  const auction::regional_instance& round = ing.ingest(batch);
  ASSERT_EQ(round.region_count(), 2u);
  // Region 0 hosts microservices 0, 2, 4: ceil(4/2), 0, ceil(0.2/2).
  EXPECT_EQ(round.regions[0].requirements,
            (std::vector<auction::units>{2, 0, 1}));
  // Region 1 hosts microservices 1, 3: ceil(6/2), ceil(4/2).
  EXPECT_EQ(round.regions[1].requirements,
            (std::vector<auction::units>{3, 2}));
  // Accumulators were reset: an empty next round quantizes to zero.
  ing.accumulate({});
  const auction::regional_instance& next = ing.finalize();
  EXPECT_EQ(next.regions[0].requirements,
            (std::vector<auction::units>{0, 0, 0}));
}

TEST(Ingest, SubBatchAccumulationMatchesWholeBatch) {
  const market::ingest_config icfg = small_ingest_config();
  rng gen(5150);
  std::vector<workload::request> batch;
  for (int i = 0; i < 64; ++i) {
    batch.push_back(request_for(
        static_cast<std::uint32_t>(gen.uniform_int(0, 4)),
        static_cast<double>(gen.uniform_int(1, 40)) / 8.0));
  }
  market::round_ingestor whole(icfg, small_standing());
  const auction::regional_instance& expect = whole.ingest(batch);

  market::round_ingestor split(icfg, small_standing());
  const std::span<const workload::request> view(batch);
  split.accumulate(view.subspan(0, 20));
  split.accumulate(view.subspan(20, 30));
  split.accumulate(view.subspan(50));
  const auction::regional_instance& got = split.finalize();
  for (std::uint32_t r = 0; r < 2; ++r) {
    EXPECT_EQ(got.regions[r].requirements, expect.regions[r].requirements);
  }
}

TEST(Ingest, QuantizeIsThreadCountInvariant) {
  market::ingest_config icfg = small_ingest_config();
  icfg.regions = 7;
  icfg.microservices = 61;
  rng gen(99);
  auction::regional_instance standing;
  standing.regions.resize(7);
  for (std::uint32_t r = 0; r < 7; ++r) {
    const std::uint32_t n = r < 61 % 7 ? 9 : 8;  // 61 round-robin over 7
    standing.regions[r].requirements.assign(n, 0);
  }
  std::vector<workload::request> batch;
  for (int i = 0; i < 500; ++i) {
    batch.push_back(request_for(
        static_cast<std::uint32_t>(gen.uniform_int(0, 60)),
        static_cast<double>(gen.uniform_int(1, 80)) / 16.0));
  }
  icfg.threads = 1;
  market::round_ingestor serial(icfg, standing);
  const auction::regional_instance& a = serial.ingest(batch);
  icfg.threads = 0;
  market::round_ingestor parallel(icfg, std::move(standing));
  const auction::regional_instance& b = parallel.ingest(batch);
  for (std::uint32_t r = 0; r < 7; ++r) {
    EXPECT_EQ(a.regions[r].requirements, b.regions[r].requirements);
  }
}

}  // namespace
}  // namespace ecrs
