// Tests for welfare accounting (Definition 4), the constructive dual
// certificate, the queueing formulas, confidence intervals, and Holt trend
// smoothing.
#include <gtest/gtest.h>

#include <cmath>

#include "auction/dual_certificate.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/ssam.h"
#include "auction/welfare.h"
#include "common/check.h"
#include "common/rng.h"
#include "demand/estimator.h"
#include "edge/queueing.h"
#include "metrics/metrics.h"

namespace ecrs {
namespace {

// ----------------------------------------------------------------- welfare

TEST(Welfare, TransfersCancelSocialWelfareIsNegatedCost) {
  rng gen(5);
  auction::instance_config cfg;
  cfg.sellers = 10;
  cfg.demanders = 3;
  const auto inst = auction::random_instance(cfg, gen);
  const auto res = auction::run_ssam(inst);
  const auto w = auction::account_welfare(inst, res, 0.0);
  // Definition 4: payments/charges are transfers, so aggregate utility is
  // exactly −(sum of winning true costs).
  EXPECT_NEAR(w.social_welfare(), -w.social_cost, 1e-9);
  EXPECT_NEAR(w.social_cost, res.social_cost, 1e-9);
  // Sellers individually profit (IR).
  for (double u : w.seller_utility) EXPECT_GE(u, -1e-9);
}

TEST(Welfare, MarkupShiftsSurplusToPlatformNotWelfare) {
  rng gen(6);
  auction::instance_config cfg;
  cfg.sellers = 8;
  cfg.demanders = 2;
  const auto inst = auction::random_instance(cfg, gen);
  const auto res = auction::run_ssam(inst);
  const auto flat = auction::account_welfare(inst, res, 0.0);
  const auto marked = auction::account_welfare(inst, res, 0.3);
  EXPECT_GT(marked.platform_utility, flat.platform_utility);
  EXPECT_GT(marked.demander_expense, flat.demander_expense);
  // The markup is a transfer: welfare identical.
  EXPECT_NEAR(marked.social_welfare(), flat.social_welfare(), 1e-9);
}

TEST(Welfare, EmptyRoundHasZeroWelfare) {
  auction::single_stage_instance inst;
  inst.requirements = {0};
  const auto w = auction::account_welfare(inst, auction::ssam_result{});
  EXPECT_DOUBLE_EQ(w.social_welfare(), 0.0);
  EXPECT_DOUBLE_EQ(w.social_cost, 0.0);
}

// -------------------------------------------------------- dual certificate

class DualCertificateSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DualCertificateSweep, FeasibleAndBelowOptimum) {
  rng gen(GetParam());
  auction::instance_config cfg;
  cfg.sellers = 8;
  cfg.demanders = 3;
  cfg.bids_per_seller = 2;
  const auto inst = auction::random_instance(cfg, gen);
  const auto res = auction::run_ssam(inst);
  if (!res.feasible) return;
  const auto cert = auction::build_dual_certificate(inst, res);
  EXPECT_TRUE(auction::dual_feasible(inst, cert));
  // Weak duality chain: certificate <= LP optimum <= ILP optimum <= SSAM.
  const double lp = auction::lp_bound(inst);
  EXPECT_LE(cert.objective, lp + 1e-6);
  const auto opt = auction::solve_exact(inst, 300000);
  if (opt.exact && opt.feasible) {
    EXPECT_LE(cert.objective, opt.cost + 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DualCertificateSweep,
                         ::testing::Range<std::uint64_t>(1, 26));

TEST(DualCertificate, EmptyRunYieldsZeroCertificate) {
  auction::single_stage_instance inst;
  inst.requirements = {0};
  const auto cert =
      auction::build_dual_certificate(inst, auction::ssam_result{});
  EXPECT_DOUBLE_EQ(cert.objective, 0.0);
  EXPECT_TRUE(auction::dual_feasible(inst, cert));
}

TEST(DualCertificate, DualFeasibleRejectsViolations) {
  auction::single_stage_instance inst;
  inst.requirements = {2};
  auction::bid b;
  b.seller = 0;
  b.coverage = {0};
  b.amount = 2;
  b.price = 4.0;
  inst.bids = {b};
  auction::dual_certificate cert;
  cert.y = {10.0};  // 2 * 10 = 20 > price 4 with no z: infeasible
  EXPECT_FALSE(auction::dual_feasible(inst, cert));
  cert.z[0] = 16.0;  // absorbs the violation
  EXPECT_TRUE(auction::dual_feasible(inst, cert));
}

// ---------------------------------------------------------------- queueing

TEST(Queueing, Mm1KnownValues) {
  // λ = 0.5, μ = 1: ρ = 0.5, W = 2, Wq = 1, L = 1, P0 = 0.5.
  EXPECT_DOUBLE_EQ(edge::utilization(0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(edge::mm1_sojourn_time(0.5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(edge::mm1_waiting_time(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(edge::mm1_number_in_system(0.5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(edge::mm1_p_empty(0.5, 1.0), 0.5);
}

TEST(Queueing, LittleLawConsistency) {
  const double lambda = 0.7;
  const double mu = 1.3;
  EXPECT_NEAR(edge::mm1_number_in_system(lambda, mu),
              lambda * edge::mm1_sojourn_time(lambda, mu), 1e-12);
}

TEST(Queueing, UnstableQueueThrows) {
  EXPECT_THROW((void)edge::mm1_sojourn_time(1.0, 1.0), check_error);
  EXPECT_THROW((void)edge::mm1_sojourn_time(2.0, 1.0), check_error);
  EXPECT_THROW((void)edge::erlang_c(5.0, 1.0, 4), check_error);
}

TEST(Queueing, ErlangCReducesToMm1Rho) {
  // For c = 1, Erlang-C equals ρ.
  EXPECT_NEAR(edge::erlang_c(0.3, 1.0, 1), 0.3, 1e-12);
  EXPECT_NEAR(edge::erlang_c(0.9, 1.0, 1), 0.9, 1e-12);
  // And the M/M/c waiting time reduces to the M/M/1 one.
  EXPECT_NEAR(edge::mmc_waiting_time(0.6, 1.0, 1),
              edge::mm1_waiting_time(0.6, 1.0), 1e-12);
}

TEST(Queueing, ErlangCClosedFormValue) {
  // λ = 15, μ = 1, c = 20: the direct summation formula gives
  // C = (a^c/c!)(c/(c−a)) / (Σ_{k<c} a^k/k! + (a^c/c!)(c/(c−a)))
  //   = 0.16042938741692...
  const double c_prob = edge::erlang_c(15.0, 1.0, 20);
  EXPECT_NEAR(c_prob, 0.1604293874169236, 1e-12);
}

TEST(Queueing, MoreServersShortenWaits) {
  const double w2 = edge::mmc_waiting_time(1.5, 1.0, 2);
  const double w3 = edge::mmc_waiting_time(1.5, 1.0, 3);
  const double w5 = edge::mmc_waiting_time(1.5, 1.0, 5);
  EXPECT_GT(w2, w3);
  EXPECT_GT(w3, w5);
}

TEST(Queueing, ServersForWaitingTimePlansCapacity) {
  const auto plan = edge::servers_for_waiting_time(15.0, 1.0, 0.05);
  ASSERT_TRUE(plan.has_value());
  const std::size_t c = *plan;
  ASSERT_GT(c, 15u);
  EXPECT_LE(edge::mmc_waiting_time(15.0, 1.0, c), 0.05);
  if (c > 16) {
    EXPECT_GT(edge::mmc_waiting_time(15.0, 1.0, c - 1), 0.05);
  }
}

TEST(Queueing, ServersForWaitingTimeInfeasibleTargetIsNullopt) {
  // An impossible target within the server cap must be reported out of band,
  // not as a 0 that silently flows into downstream arithmetic.
  EXPECT_FALSE(edge::servers_for_waiting_time(1000.0, 1.0, 1e-9, 1001)
                   .has_value());
  // A queue needing more servers than the cap allows is likewise infeasible:
  // λ = 50 needs at least 51 servers for stability alone.
  EXPECT_FALSE(edge::servers_for_waiting_time(50.0, 1.0, 10.0, 40)
                   .has_value());
  // The same target with room to spare is feasible again.
  EXPECT_TRUE(edge::servers_for_waiting_time(50.0, 1.0, 10.0, 60)
                  .has_value());
}

// -------------------------------------------------- confidence intervals

TEST(ConfidenceInterval, ZeroForTinySamples) {
  running_stats s;
  EXPECT_DOUBLE_EQ(metrics::ci95_half_width(s), 0.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(metrics::ci95_half_width(s), 0.0);
}

TEST(ConfidenceInterval, MatchesHandComputedTwoPoints) {
  running_stats s;
  s.add(1.0);
  s.add(3.0);
  // sample var = 2, sem = 1, t(df=1) = 12.706.
  EXPECT_NEAR(metrics::ci95_half_width(s), 12.706, 1e-9);
}

TEST(ConfidenceInterval, ShrinksWithSampleSize) {
  rng gen(11);
  running_stats small;
  running_stats large;
  for (int i = 0; i < 5; ++i) small.add(gen.uniform_real(0.0, 1.0));
  for (int i = 0; i < 500; ++i) large.add(gen.uniform_real(0.0, 1.0));
  EXPECT_GT(metrics::ci95_half_width(small), metrics::ci95_half_width(large));
  // Large-sample CI for U(0,1): ~1.96 * sqrt(1/12)/sqrt(500) ≈ 0.025.
  EXPECT_NEAR(metrics::ci95_half_width(large), 0.025, 0.01);
}

// ------------------------------------------------------------- Holt trend

edge::round_stats stats_with_pressure(std::uint64_t round, double utilization) {
  edge::round_stats s;
  s.microservice = 0;
  s.round = round;
  s.received = 10;
  s.served = 10;
  s.allocation = 1.0;
  s.utilization = utilization;
  s.cloud_population = 1;
  return s;
}

TEST(HoltTrend, AnticipatesRisingDemand) {
  demand::estimator_config cfg = demand::make_default_config();
  cfg.smoothing = 0.3;
  cfg.round_duration = 10.0;

  demand::estimator plain(cfg);
  cfg.trend_smoothing = 0.5;
  demand::estimator holt(cfg);

  // Steadily rising utilization: the trend-aware estimator should forecast
  // higher than the plain EWMA after a few rounds.
  double plain_last = 0.0;
  double holt_last = 0.0;
  for (std::uint64_t r = 1; r <= 8; ++r) {
    const auto s =
        stats_with_pressure(r, 0.1 + 0.1 * static_cast<double>(r));
    plain_last = plain.estimate(s, 1.0);
    holt_last = holt.estimate(s, 1.0);
  }
  EXPECT_GT(holt_last, plain_last);
}

TEST(HoltTrend, ConstantObservationsHaveNoTrend) {
  demand::estimator_config cfg = demand::make_default_config();
  cfg.smoothing = 0.3;
  cfg.trend_smoothing = 0.4;
  cfg.round_duration = 10.0;
  demand::estimator est(cfg);
  // Identical observations (round pinned at 1: the request-rate indicator
  // of Eq. 2 scales with t, so a fixed t makes the raw demand constant).
  double first = 0.0;
  double last = 0.0;
  for (int i = 0; i < 10; ++i) {
    last = est.estimate(stats_with_pressure(1, 0.5), 1.0);
    if (i == 0) first = last;
  }
  EXPECT_NEAR(last, first, 1e-9);
}

TEST(HoltTrend, RejectsBadFactor) {
  demand::estimator_config cfg = demand::make_default_config();
  cfg.trend_smoothing = 1.0;
  EXPECT_THROW(demand::estimator{cfg}, check_error);
}

TEST(HoltTrend, ForecastNeverNegative) {
  demand::estimator_config cfg = demand::make_default_config();
  cfg.smoothing = 0.2;
  cfg.trend_smoothing = 0.8;
  cfg.round_duration = 10.0;
  demand::estimator est(cfg);
  // Sharp collapse after a rise: the trend goes negative, but the forecast
  // is floored at zero.
  for (std::uint64_t r = 1; r <= 5; ++r) {
    (void)est.estimate(stats_with_pressure(r, 0.9), 1.0);
  }
  double value = 1.0;
  for (std::uint64_t r = 6; r <= 14; ++r) {
    value = est.estimate(stats_with_pressure(r, 0.0), 1.0);
    EXPECT_GE(value, 0.0);
  }
}

}  // namespace
}  // namespace ecrs
