// Unit tests for the edge substrate: microservice queues, max-min fair
// sharing, and the cluster.
#include <gtest/gtest.h>

#include <numeric>

#include "common/check.h"
#include "edge/cluster.h"
#include "edge/fair_share.h"
#include "edge/microservice.h"

namespace ecrs::edge {
namespace {

workload::request make_request(std::uint32_t service, double arrival,
                               double demand) {
  workload::request r;
  static std::uint64_t next_id = 1;
  r.id = next_id++;
  r.microservice = service;
  r.arrival_time = arrival;
  r.service_demand = demand;
  return r;
}

// -------------------------------------------------------------- fair share

TEST(FairShare, UnderloadedGivesEveryoneTheirDemand) {
  const auto alloc = max_min_fair_share({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 2.0);
  EXPECT_DOUBLE_EQ(alloc[2], 3.0);
}

TEST(FairShare, OverloadedWaterFills) {
  // Capacity 6 over demands {1, 4, 4}: small demand fully served, the rest
  // split the remainder equally.
  const auto alloc = max_min_fair_share({1.0, 4.0, 4.0}, 6.0);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 2.5);
  EXPECT_DOUBLE_EQ(alloc[2], 2.5);
}

TEST(FairShare, NeverExceedsCapacityOrDemand) {
  const std::vector<double> demands = {5.0, 0.5, 7.0, 2.0, 0.0};
  const auto alloc = max_min_fair_share(demands, 4.0);
  double total = 0.0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_LE(alloc[i], demands[i] + 1e-12);
    EXPECT_GE(alloc[i], 0.0);
    total += alloc[i];
  }
  EXPECT_LE(total, 4.0 + 1e-9);
}

TEST(FairShare, MaxMinProperty) {
  // Any recipient below its demand must hold at least as much as every
  // other recipient's allocation (the defining max-min property).
  const std::vector<double> demands = {3.0, 8.0, 1.0, 6.0};
  const auto alloc = max_min_fair_share(demands, 10.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (alloc[i] < demands[i] - 1e-9) {
      for (std::size_t j = 0; j < demands.size(); ++j) {
        EXPECT_GE(alloc[i], alloc[j] - 1e-9);
      }
    }
  }
}

TEST(FairShare, EmptyAndZeroCapacity) {
  EXPECT_TRUE(max_min_fair_share({}, 5.0).empty());
  const auto alloc = max_min_fair_share({1.0, 2.0}, 0.0);
  EXPECT_DOUBLE_EQ(alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(alloc[1], 0.0);
}

TEST(FairShare, RejectsNegativeInputs) {
  EXPECT_THROW(max_min_fair_share({-1.0}, 5.0), check_error);
  EXPECT_THROW(max_min_fair_share({1.0}, -5.0), check_error);
}

TEST(EqualShare, SplitsEvenly) {
  const auto alloc = equal_share(4, 10.0);
  ASSERT_EQ(alloc.size(), 4u);
  for (double a : alloc) EXPECT_DOUBLE_EQ(a, 2.5);
  EXPECT_TRUE(equal_share(0, 10.0).empty());
}

// ------------------------------------------------------------ microservice

TEST(Microservice, ServesQueuedWorkAtAllocationRate) {
  microservice svc(0, workload::qos_class::delay_sensitive);
  svc.set_allocation(2.0);  // 2 resource units
  svc.enqueue(make_request(0, 0.0, 4.0));
  svc.advance(0.0, 1.0);  // serves 2 resource-seconds of the 4 needed
  EXPECT_EQ(svc.total_served(), 0u);
  EXPECT_NEAR(svc.backlog_work(), 2.0, 1e-12);
  svc.advance(1.0, 1.0);  // finishes
  EXPECT_EQ(svc.total_served(), 1u);
  EXPECT_NEAR(svc.backlog_work(), 0.0, 1e-12);
}

TEST(Microservice, FifoCompletionOrderAndWaitTimes) {
  microservice svc(0, workload::qos_class::delay_tolerant);
  svc.set_allocation(1.0);
  svc.enqueue(make_request(0, 0.0, 1.0));
  svc.enqueue(make_request(0, 0.0, 1.0));
  svc.advance(0.0, 2.0);
  const auto stats = svc.end_round(1, 2.0, 1);
  EXPECT_EQ(stats.served, 2u);
  // First completes at t=1 (wait 1), second at t=2 (wait 2).
  EXPECT_NEAR(stats.mean_wait, 1.5, 1e-9);
}

TEST(Microservice, ZeroAllocationServesNothing) {
  microservice svc(3, workload::qos_class::delay_sensitive);
  svc.set_allocation(0.0);
  svc.enqueue(make_request(3, 0.0, 1.0));
  svc.advance(0.0, 10.0);
  EXPECT_EQ(svc.total_served(), 0u);
  EXPECT_DOUBLE_EQ(svc.backlog_work(), 1.0);
}

TEST(Microservice, RejectsMisroutedRequest) {
  microservice svc(1, workload::qos_class::delay_sensitive);
  EXPECT_THROW(svc.enqueue(make_request(2, 0.0, 1.0)), check_error);
}

TEST(Microservice, RoundStatsResetAfterEndRound) {
  microservice svc(0, workload::qos_class::delay_sensitive);
  svc.set_allocation(10.0);
  svc.enqueue(make_request(0, 0.0, 1.0));
  svc.advance(0.0, 1.0);
  const auto first = svc.end_round(1, 1.0, 2);
  EXPECT_EQ(first.received, 1u);
  EXPECT_EQ(first.served, 1u);
  EXPECT_EQ(first.cloud_population, 2u);
  const auto second = svc.end_round(2, 1.0, 2);
  EXPECT_EQ(second.received, 0u);
  EXPECT_EQ(second.served, 0u);
  EXPECT_DOUBLE_EQ(second.utilization, 0.0);
  // Lifetime counters persist.
  EXPECT_EQ(svc.total_served(), 1u);
}

TEST(Microservice, UtilizationReflectsBusyFraction) {
  microservice svc(0, workload::qos_class::delay_sensitive);
  svc.set_allocation(1.0);
  svc.enqueue(make_request(0, 0.0, 2.0));
  svc.advance(0.0, 4.0);  // busy 2 of 4 seconds
  const auto stats = svc.end_round(1, 4.0, 1);
  EXPECT_NEAR(stats.utilization, 0.5, 1e-9);
}

TEST(RoundStats, RequiredAndAchievedRates) {
  round_stats s;
  s.arrived_work = 6.0;
  s.backlog_work = 2.0;
  s.served_work = 4.0;
  EXPECT_DOUBLE_EQ(s.required_rate(2.0), 4.0);
  EXPECT_DOUBLE_EQ(s.achieved_rate(2.0), 2.0);
  EXPECT_THROW(s.required_rate(0.0), check_error);
}

TEST(Microservice, PartialServiceCarriesAcrossRounds) {
  // A request half-served in round 1 completes in round 2; the completion
  // is counted once, in round 2.
  microservice svc(0, workload::qos_class::delay_sensitive);
  svc.set_allocation(1.0);
  svc.enqueue(make_request(0, 0.0, 3.0));
  svc.advance(0.0, 2.0);
  const auto r1 = svc.end_round(1, 2.0, 1);
  EXPECT_EQ(r1.served, 0u);
  EXPECT_NEAR(r1.backlog_work, 1.0, 1e-12);
  svc.advance(2.0, 2.0);
  const auto r2 = svc.end_round(2, 2.0, 1);
  EXPECT_EQ(r2.served, 1u);
  EXPECT_NEAR(r2.backlog_work, 0.0, 1e-12);
  // Sojourn measured from the true arrival, not the round boundary.
  EXPECT_NEAR(r2.mean_wait, 3.0, 1e-9);
}

TEST(Microservice, LastRoundArrivedWorkTracksPreviousRound) {
  microservice svc(0, workload::qos_class::delay_sensitive);
  EXPECT_DOUBLE_EQ(svc.last_round_arrived_work(), 0.0);
  svc.enqueue(make_request(0, 0.0, 2.5));
  (void)svc.end_round(1, 1.0, 1);
  EXPECT_DOUBLE_EQ(svc.last_round_arrived_work(), 2.5);
  (void)svc.end_round(2, 1.0, 1);
  EXPECT_DOUBLE_EQ(svc.last_round_arrived_work(), 0.0);
}

// ----------------------------------------------------------------- cluster

std::vector<workload::qos_class> uniform_qos(std::size_t n) {
  return std::vector<workload::qos_class>(
      n, workload::qos_class::delay_sensitive);
}

TEST(Cluster, PlacesEveryServiceOnExactlyOneCloud) {
  cluster_config cfg;
  cfg.clouds = 4;
  cluster c(cfg, uniform_qos(20));
  EXPECT_EQ(c.microservice_count(), 20u);
  EXPECT_EQ(c.cloud_count(), 4u);
  std::size_t hosted_total = 0;
  for (std::uint32_t l = 0; l < 4; ++l) hosted_total += c.cloud(l).hosted.size();
  EXPECT_EQ(hosted_total, 20u);
  for (std::uint32_t s = 0; s < 20; ++s) {
    const auto cl = c.cloud_of(s);
    const auto& hosted = c.cloud(cl).hosted;
    EXPECT_NE(std::find(hosted.begin(), hosted.end(), s), hosted.end());
  }
}

TEST(Cluster, FairAllocationRespectsCloudCapacity) {
  cluster_config cfg;
  cfg.clouds = 2;
  cfg.capacity_per_cloud = 5.0;
  cluster c(cfg, uniform_qos(10));
  // Load some queues to create demand.
  for (std::uint32_t s = 0; s < 10; ++s) {
    auto r = make_request(s, 0.0, 100.0);
    c.service(s).enqueue(r);
  }
  c.allocate_fair(1.0);
  for (std::uint32_t l = 0; l < 2; ++l) {
    double total = 0.0;
    for (std::uint32_t s : c.cloud(l).hosted) total += c.service(s).allocation();
    EXPECT_LE(total, 5.0 + 1e-9);
  }
}

TEST(Cluster, RouteDeliversToTargets) {
  cluster_config cfg;
  cfg.clouds = 2;
  cluster c(cfg, uniform_qos(3));
  std::vector<workload::request> batch = {make_request(1, 0.0, 1.0),
                                          make_request(1, 0.1, 1.0),
                                          make_request(2, 0.2, 1.0)};
  c.route(batch);
  EXPECT_EQ(c.service(0).queue_length(), 0u);
  EXPECT_EQ(c.service(1).queue_length(), 2u);
  EXPECT_EQ(c.service(2).queue_length(), 1u);
}

TEST(Cluster, RouteRejectsUnknownService) {
  cluster_config cfg;
  cluster c(cfg, uniform_qos(2));
  EXPECT_THROW(c.route({make_request(9, 0.0, 1.0)}), check_error);
}

TEST(Cluster, EndRoundReportsCloudPopulation) {
  cluster_config cfg;
  cfg.clouds = 1;
  cluster c(cfg, uniform_qos(5));
  const auto stats = c.end_round(1, 1.0);
  ASSERT_EQ(stats.size(), 5u);
  for (const auto& s : stats) EXPECT_EQ(s.cloud_population, 5u);
}

TEST(Cluster, AdjustAllocationClampsAtZero) {
  cluster_config cfg;
  cluster c(cfg, uniform_qos(1));
  c.service(0).set_allocation(2.0);
  c.adjust_allocation(0, 3.0);
  EXPECT_DOUBLE_EQ(c.service(0).allocation(), 5.0);
  c.adjust_allocation(0, -100.0);
  EXPECT_DOUBLE_EQ(c.service(0).allocation(), 0.0);
}

TEST(Cluster, FullRoundPipelineDrainsWork) {
  cluster_config cfg;
  cfg.clouds = 2;
  cfg.capacity_per_cloud = 50.0;  // ample capacity
  cluster c(cfg, uniform_qos(4));
  std::vector<workload::request> batch;
  for (std::uint32_t s = 0; s < 4; ++s) {
    batch.push_back(make_request(s, 0.0, 2.0));
  }
  c.route(batch);
  c.allocate_fair(1.0);
  c.advance(0.0, 1.0);
  const auto stats = c.end_round(1, 1.0);
  std::uint64_t served = 0;
  for (const auto& s : stats) served += s.served;
  EXPECT_EQ(served, 4u);
}

TEST(Cluster, RejectsDegenerateConfigs) {
  cluster_config cfg;
  cfg.clouds = 0;
  EXPECT_THROW(cluster(cfg, uniform_qos(1)), check_error);
  cfg.clouds = 1;
  EXPECT_THROW(cluster(cfg, {}), check_error);
  cfg.capacity_per_cloud = 0.0;
  EXPECT_THROW(cluster(cfg, uniform_qos(1)), check_error);
}

// ------------------------------------------------------------- checkpoints

// Every field a round report exposes must restore bit for bit.
void expect_same_stats(const round_stats& a, const round_stats& b) {
  EXPECT_EQ(a.received, b.received);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.arrived_work, b.arrived_work);
  EXPECT_EQ(a.served_work, b.served_work);
  EXPECT_EQ(a.backlog_work, b.backlog_work);
  EXPECT_EQ(a.allocation, b.allocation);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.mean_wait, b.mean_wait);
}

TEST(Microservice, CheckpointRestoresQueueMidService) {
  microservice source(3, workload::qos_class::delay_sensitive);
  source.set_allocation(0.5);
  source.enqueue(make_request(3, 0.0, 2.0));
  source.enqueue(make_request(3, 0.5, 1.5));
  source.advance(0.0, 1.0);  // head request partially served

  ecrs::checkpoint_writer w;
  source.save(w);
  ecrs::checkpoint_reader r(w.payload());
  microservice restored(3, workload::qos_class::delay_sensitive);
  restored.load(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(restored.queue_length(), source.queue_length());
  EXPECT_EQ(restored.backlog_work(), source.backlog_work());
  EXPECT_EQ(restored.allocation(), source.allocation());

  // Identical futures: serve both to completion and compare the round.
  source.advance(1.0, 10.0);
  restored.advance(1.0, 10.0);
  expect_same_stats(source.end_round(1, 11.0, 2),
                    restored.end_round(1, 11.0, 2));

  // Identity is construction-time: a different id/qos rejects the payload.
  ecrs::checkpoint_reader again(w.payload());
  microservice other(4, workload::qos_class::delay_sensitive);
  EXPECT_THROW(other.load(again), check_error);
}

TEST(Cluster, CheckpointRoundTripMatchesStraightRun) {
  cluster_config cfg;
  cfg.clouds = 3;
  cfg.seed = 11;
  cluster source(cfg, uniform_qos(6));
  std::vector<workload::request> batch;
  for (std::uint32_t m = 0; m < 6; ++m) {
    batch.push_back(make_request(m, 0.25 * m, 1.0 + 0.5 * m));
  }
  source.route(batch);
  source.advance(0.0, 2.0);

  ecrs::checkpoint_writer w;
  source.save(w);
  ecrs::checkpoint_reader r(w.payload());
  cluster restored(cfg, uniform_qos(6));
  restored.load(r);
  EXPECT_TRUE(r.exhausted());

  source.advance(2.0, 3.0);
  restored.advance(2.0, 3.0);
  const auto source_stats = source.end_round(1, 5.0);
  const auto restored_stats = restored.end_round(1, 5.0);
  ASSERT_EQ(source_stats.size(), restored_stats.size());
  for (std::size_t m = 0; m < source_stats.size(); ++m) {
    expect_same_stats(source_stats[m], restored_stats[m]);
  }

  // A differently-shaped cluster rejects the payload.
  ecrs::checkpoint_reader again(w.payload());
  cluster smaller(cfg, uniform_qos(5));
  EXPECT_THROW(smaller.load(again), check_error);
}

}  // namespace
}  // namespace ecrs::edge
