// Unit tests for the compiled CSR instance layout (auction/compiled.h):
// arena and inverted-index construction, the cached instance scalars, the
// incremental state trackers, and the warm-start patch API — every patched
// view must be bit-identical to a cold recompile of the same instance.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "auction/compiled.h"
#include "auction/instance_gen.h"
#include "auction/ssam.h"
#include "common/check.h"
#include "common/rng.h"

namespace ecrs::auction {
namespace {

bid make_bid(seller_id s, std::vector<demander_id> cover, units amount,
             double price, std::uint32_t j = 0) {
  bid b;
  b.seller = s;
  b.index = j;
  b.coverage = std::move(cover);
  b.amount = amount;
  b.price = price;
  return b;
}

single_stage_instance small_instance() {
  // 3 demanders, 4 bids from 3 sellers with overlapping coverage.
  single_stage_instance inst;
  inst.requirements = {4, 3, 5};
  inst.bids = {make_bid(0, {0, 1}, 2, 10.0),     // U(∅) = 2 + 2 = 4
               make_bid(0, {2}, 5, 9.0, 1),      // U(∅) = 5
               make_bid(1, {0, 2}, 3, 6.0),      // U(∅) = 3 + 3 = 6
               make_bid(2, {1}, 4, 8.0)};        // U(∅) = 3
  return inst;
}

// Bit-level equality of two compiled views (the warm-start contract).
void expect_same_compiled(const compiled_instance& a,
                          const compiled_instance& b) {
  ASSERT_EQ(a.bid_count(), b.bid_count());
  ASSERT_EQ(a.demander_count(), b.demander_count());
  EXPECT_EQ(a.total_requirement(), b.total_requirement());
  EXPECT_EQ(a.total_supply(), b.total_supply());
  EXPECT_EQ(a.price_bound(), b.price_bound());
  EXPECT_EQ(a.seller_count(), b.seller_count());
  EXPECT_EQ(a.seller_slots(), b.seller_slots());
  EXPECT_EQ(a.requirements(), b.requirements());
  for (std::size_t i = 0; i < a.bid_count(); ++i) {
    EXPECT_EQ(a.price(i), b.price(i)) << "bid " << i;
    EXPECT_EQ(a.amount(i), b.amount(i)) << "bid " << i;
    EXPECT_EQ(a.seller(i), b.seller(i)) << "bid " << i;
    EXPECT_EQ(a.initial_utility(i), b.initial_utility(i)) << "bid " << i;
    ASSERT_EQ(a.coverage_size(i), b.coverage_size(i)) << "bid " << i;
    EXPECT_TRUE(std::equal(a.coverage_begin(i), a.coverage_end(i),
                           b.coverage_begin(i)))
        << "bid " << i;
  }
  ASSERT_EQ(a.order().size(), b.order().size());
  for (std::size_t p = 0; p < a.order().size(); ++p) {
    EXPECT_EQ(a.order()[p].key, b.order()[p].key) << "order pos " << p;
    EXPECT_EQ(a.order()[p].idx, b.order()[p].idx) << "order pos " << p;
    EXPECT_EQ(a.order()[p].seller, b.order()[p].seller) << "order pos " << p;
  }
}

// ----------------------------------------------------------------- compile

TEST(CompiledInstance, FlattensRowsAndArena) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);

  ASSERT_EQ(c.bid_count(), 4u);
  ASSERT_EQ(c.demander_count(), 3u);
  for (std::size_t i = 0; i < inst.bids.size(); ++i) {
    EXPECT_EQ(c.price(i), inst.bids[i].price);
    EXPECT_EQ(c.amount(i), inst.bids[i].amount);
    EXPECT_EQ(c.seller(i), inst.bids[i].seller);
    ASSERT_EQ(c.coverage_size(i), inst.bids[i].coverage.size());
    EXPECT_TRUE(std::equal(c.coverage_begin(i), c.coverage_end(i),
                           inst.bids[i].coverage.begin()));
  }
}

TEST(CompiledInstance, CachedScalarsMatchBidVectorApi) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);

  EXPECT_EQ(c.seller_count(), inst.seller_count());
  EXPECT_EQ(c.total_requirement(), inst.total_requirement());
  EXPECT_EQ(c.seller_slots(), 3u);  // max seller id 2 + 1
  units supply = 0;
  double price_bound = 1.0;
  for (const bid& b : inst.bids) {
    supply += b.amount * static_cast<units>(b.coverage_size());
    price_bound = std::max(price_bound, b.price);
  }
  EXPECT_EQ(c.total_supply(), supply);
  EXPECT_EQ(c.price_bound(), price_bound);
}

TEST(CompiledInstance, InvertedIndexListsCoveringBidsAscending) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);

  const std::vector<std::vector<std::uint32_t>> expected = {
      {0, 2},  // demander 0 covered by bids 0 and 2
      {0, 3},  // demander 1 covered by bids 0 and 3
      {1, 2},  // demander 2 covered by bids 1 and 2
  };
  for (demander_id k = 0; k < 3; ++k) {
    const std::vector<std::uint32_t> got(c.covering_begin(k),
                                         c.covering_end(k));
    EXPECT_EQ(got, expected[k]) << "demander " << k;
  }
}

TEST(CompiledInstance, InitialUtilitiesAndOrderSeed) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);

  const std::vector<units> expected_util = {4, 5, 6, 3};
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.initial_utility(i), expected_util[i]) << "bid " << i;
  }
  // All four bids contribute; order ascending by price / U(∅):
  // bid 2: 1.0, bid 1: 1.8, bid 0: 2.5, bid 3: 8/3.
  ASSERT_EQ(c.order().size(), 4u);
  const std::vector<std::uint32_t> expected_idx = {2, 1, 0, 3};
  for (std::size_t p = 0; p < 4; ++p) {
    const compiled_entry& e = c.order()[p];
    EXPECT_EQ(e.idx, expected_idx[p]) << "pos " << p;
    EXPECT_EQ(e.key, inst.bids[e.idx].price /
                         static_cast<double>(expected_util[e.idx]));
    EXPECT_EQ(e.seller, inst.bids[e.idx].seller);
  }
}

TEST(CompiledInstance, ZeroUtilityBidsStayOutOfTheOrder) {
  single_stage_instance inst;
  inst.requirements = {2, 0};
  inst.bids = {make_bid(0, {1}, 3, 5.0),   // covers only the zero demander
               make_bid(1, {0}, 2, 4.0)};
  compiled_instance c;
  c.compile(inst);
  ASSERT_EQ(c.order().size(), 1u);
  EXPECT_EQ(c.order()[0].idx, 1u);
  EXPECT_EQ(c.initial_utility(0), 0);
}

// ----------------------------------------------------- warm-start patching

TEST(CompiledInstance, PricePatchMatchesColdRecompile) {
  rng gen(42);
  instance_config cfg;
  cfg.sellers = 20;
  cfg.demanders = 4;
  auto inst = random_instance(cfg, gen);

  compiled_instance patched;
  patched.compile(inst);
  // Shift a scattering of prices (the per-seller ψ-offset pattern) and one
  // price downwards past everything else.
  for (std::size_t i = 0; i < inst.bids.size(); i += 3) {
    inst.bids[i].price += 7.25 * static_cast<double>(i % 5 + 1);
    patched.set_price(i, inst.bids[i].price);
  }
  inst.bids[1].price = 0.25;
  patched.set_price(1, 0.25);
  patched.refresh_order();

  compiled_instance cold;
  cold.compile(inst);
  expect_same_compiled(patched, cold);
}

TEST(CompiledInstance, RequirementPatchRederivesUtilities) {
  rng gen(43);
  instance_config cfg;
  cfg.sellers = 15;
  cfg.demanders = 5;
  auto inst = random_instance(cfg, gen);

  compiled_instance patched;
  patched.compile(inst);
  inst.requirements[0] = 0;
  inst.requirements[2] += 13;
  inst.requirements[4] = 1;
  for (demander_id k = 0; k < inst.requirements.size(); ++k) {
    patched.set_requirement(k, inst.requirements[k]);
  }
  patched.refresh_order();

  compiled_instance cold;
  cold.compile(inst);
  expect_same_compiled(patched, cold);
}

TEST(CompiledInstance, RepeatedMixedPatchesStayExact) {
  rng gen(44);
  instance_config cfg;
  cfg.sellers = 12;
  cfg.demanders = 3;
  auto inst = random_instance(cfg, gen);

  compiled_instance patched;
  patched.compile(inst);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = round % 2; i < inst.bids.size(); i += 2) {
      inst.bids[i].price += 0.5 + static_cast<double>(round);
      patched.set_price(i, inst.bids[i].price);
    }
    inst.requirements[round % inst.requirements.size()] += 2;
    patched.set_requirement(
        static_cast<demander_id>(round % inst.requirements.size()),
        inst.requirements[round % inst.requirements.size()]);
    patched.refresh_order();

    compiled_instance cold;
    cold.compile(inst);
    expect_same_compiled(patched, cold);
  }
}

TEST(CompiledInstance, NoOpPatchLeavesOrderUntouched) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);
  const auto before = c.order();
  c.set_price(0, inst.bids[0].price);          // same value: no dirty mark
  c.set_requirement(1, inst.requirements[1]);  // same value: no dirty mark
  c.refresh_order();                           // nothing dirty: early out
  ASSERT_EQ(c.order().size(), before.size());
  for (std::size_t p = 0; p < before.size(); ++p) {
    EXPECT_EQ(c.order()[p].idx, before[p].idx);
    EXPECT_EQ(c.order()[p].key, before[p].key);
  }
}

TEST(CompiledInstance, PatchValidation) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);
  EXPECT_THROW(c.set_price(0, -1.0), check_error);
  EXPECT_THROW(c.set_price(99, 1.0), check_error);
  EXPECT_THROW(c.set_requirement(0, -2), check_error);
  EXPECT_THROW(c.set_requirement(99, 1), check_error);
}

// ------------------------------------------------------- state trackers

TEST(CompiledState, TracksCoverageStateExactly) {
  rng gen(7);
  instance_config cfg;
  cfg.sellers = 18;
  cfg.demanders = 4;
  const auto inst = random_instance(cfg, gen);
  compiled_instance c;
  c.compile(inst);

  coverage_state reference(inst.requirements);
  compiled_state state;
  state.reset(c);
  const auto winners = greedy_selection(inst);
  for (std::size_t w : winners) {
    for (std::size_t i = 0; i < inst.bids.size(); ++i) {
      EXPECT_EQ(state.marginal_utility(c, i),
                reference.marginal_utility(inst.bids[i]))
          << "bid " << i;
    }
    EXPECT_EQ(state.apply(c, w), reference.apply(inst.bids[w]));
    EXPECT_EQ(state.deficit(), reference.deficit());
    EXPECT_EQ(state.satisfied(), reference.satisfied());
  }
}

TEST(ScoredState, MaintainsExactUtilitiesThroughApplies) {
  rng gen(8);
  instance_config cfg;
  cfg.sellers = 18;
  cfg.demanders = 4;
  const auto inst = random_instance(cfg, gen);
  compiled_instance c;
  c.compile(inst);

  scored_state scored;
  scored.reset(c);
  compiled_state reference;
  reference.reset(c);
  std::vector<std::uint32_t> dirty;
  const auto winners = greedy_selection(inst);
  for (std::size_t w : winners) {
    dirty.clear();
    const units gain = scored.apply(c, w, dirty);
    EXPECT_EQ(gain, reference.apply(c, w));
    // Reported dirty bids are unique and every bid's cached utility is the
    // exact recomputed marginal utility (changed or not).
    std::vector<std::uint32_t> sorted_dirty = dirty;
    std::sort(sorted_dirty.begin(), sorted_dirty.end());
    EXPECT_TRUE(std::adjacent_find(sorted_dirty.begin(), sorted_dirty.end()) ==
                sorted_dirty.end());
    for (std::size_t i = 0; i < c.bid_count(); ++i) {
      EXPECT_EQ(scored.utility(i), reference.marginal_utility(c, i))
          << "bid " << i << " after applying " << w;
    }
  }
}

// ---------------------------------------------------- compiled run_ssam

TEST(RunSsamCompiledOverload, MatchesBidVectorEntry) {
  rng gen(9);
  instance_config cfg;
  cfg.sellers = 20;
  cfg.demanders = 4;
  const auto inst = random_instance(cfg, gen);
  ssam_options opts;
  opts.rule = payment_rule::critical_value;

  const auto via_bids = run_ssam(inst, opts);
  compiled_instance c;
  c.compile(inst);
  const auto via_compiled = run_ssam(c, opts);

  ASSERT_EQ(via_bids.winners.size(), via_compiled.winners.size());
  for (std::size_t pos = 0; pos < via_bids.winners.size(); ++pos) {
    EXPECT_EQ(via_bids.winners[pos].bid_index,
              via_compiled.winners[pos].bid_index);
    EXPECT_EQ(via_bids.winners[pos].payment,
              via_compiled.winners[pos].payment);
  }
  EXPECT_EQ(via_bids.feasible, via_compiled.feasible);
  EXPECT_EQ(via_bids.social_cost, via_compiled.social_cost);
  EXPECT_EQ(via_bids.total_payment, via_compiled.total_payment);
}

TEST(RunSsamCompiledOverload, RejectsReferenceModes) {
  const auto inst = small_instance();
  compiled_instance c;
  c.compile(inst);
  ssam_options opts;
  opts.eager_reference = true;
  EXPECT_THROW(run_ssam(c, opts), check_error);
  opts = ssam_options{};
  opts.legacy_reference = true;
  EXPECT_THROW(run_ssam(c, opts), check_error);
}

TEST(CompiledInstance, CompileRejectsOutOfRangeCoverage) {
  single_stage_instance inst;
  inst.requirements = {1};
  inst.bids = {make_bid(0, {3}, 1, 1.0)};  // demander 3 does not exist
  compiled_instance c;
  EXPECT_THROW(c.compile(inst), check_error);
}

}  // namespace
}  // namespace ecrs::auction
