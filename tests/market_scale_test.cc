// Large-scale streaming marketplace byte-identity (PR 9 acceptance): a
// 64-region x 1000-demanders-per-region horizon fed from the workload
// stream through market::round_ingestor must produce byte-identical
// rounds at every thread setting {1, 2, hardware, 0}. Slow-labeled: quick
// CI lanes run `ctest -LE slow`; the full lanes run it everywhere else.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "auction/instance_gen.h"
#include "edge/topology.h"
#include "harness/internal.h"
#include "market/ingest.h"
#include "market/marketplace.h"
#include "workload/generator.h"

namespace ecrs {
namespace {

constexpr std::uint32_t kRegions = 64;
constexpr std::uint32_t kDemandersPerRegion = 1000;
constexpr std::size_t kRounds = 2;

struct scale_setup {
  auction::regional_online_instance input;
  market::ingest_config icfg;
  workload::generator_config wcfg;
};

scale_setup build_setup() {
  auction::online_config stage;
  stage.stage = harness::internal::paper_stage(/*sellers=*/4,
                                               kDemandersPerRegion,
                                               /*bids_per_seller=*/2);
  stage.stage.max_coverage = 50;  // keep per-bid coverage bounded at scale
  stage.rounds = 1;               // standing (round 1) bids only
  auction::regional_config regional;
  regional.regions = kRegions;
  rng gen = harness::internal::point_rng(7, 12, 2, 0);

  scale_setup setup;
  setup.input =
      auction::random_regional_online_instance(stage, regional, gen);
  setup.icfg.regions = kRegions;
  setup.icfg.microservices = kRegions * kDemandersPerRegion;
  setup.icfg.unit_demand = 4.0;
  setup.icfg.max_requirement = stage.stage.requirement_hi;
  setup.icfg.supply_margin = stage.stage.supply_margin;
  setup.icfg.demand_scale = 1.25;
  setup.wcfg.users = setup.icfg.microservices / 15 + 1;
  setup.wcfg.microservices = setup.icfg.microservices;
  setup.wcfg.regions = kRegions;
  setup.wcfg.seed = 7;
  return setup;
}

// Every decision a round made, bit-exact (doubles by bit pattern).
void digest_round(const market::marketplace_round& round,
                  std::vector<std::uint64_t>& out) {
  const auto push_double = [&](double v) {
    out.push_back(std::bit_cast<std::uint64_t>(v));
  };
  out.push_back(round.round);
  for (const auto& shard : round.shards) {
    out.push_back(shard.outcome.winner_bids.size());
    for (const std::size_t w : shard.outcome.winner_bids) out.push_back(w);
    for (const double p : shard.outcome.payments) push_double(p);
    push_double(shard.outcome.social_cost);
    out.push_back(static_cast<std::uint64_t>(shard.deficit));
  }
  out.push_back(round.spillover.awards.size());
  for (const auto& award : round.spillover.awards) {
    out.push_back(award.demand_region);
    out.push_back(award.helper_region);
    out.push_back(award.seller);
    out.push_back(award.bid_index);
    for (const auto k : award.covered) out.push_back(k);
    out.push_back(static_cast<std::uint64_t>(award.amount));
    push_double(award.ask);
    push_double(award.payment);
  }
  out.push_back(static_cast<std::uint64_t>(round.unmet_units));
  push_double(round.social_cost);
  push_double(round.total_payment);
}

std::vector<std::uint64_t> run_horizon(const scale_setup& setup,
                                       std::size_t threads) {
  edge::topology topo = edge::topology::ring(kRegions);
  market::marketplace_options options;
  options.threads = threads;
  options.shard.session.stage.payment_threads = 1;
  options.spillover.stage.payment_threads = 1;
  std::vector<std::vector<auction::seller_profile>> sellers;
  for (const auto& region : setup.input.regions) {
    sellers.push_back(region.sellers);
  }
  market::marketplace mkt(topo, std::move(sellers), options);

  market::ingest_config icfg = setup.icfg;
  icfg.threads = threads;
  auction::regional_instance standing;
  for (const auto& region : setup.input.regions) {
    standing.regions.push_back(region.rounds.front());
  }
  market::round_ingestor ingestor(icfg, std::move(standing));
  workload::generator gen(setup.wcfg);

  std::vector<workload::request> batch;
  market::marketplace_round result;
  std::vector<std::uint64_t> digest;
  for (std::size_t t = 0; t < kRounds; ++t) {
    gen.round_into(static_cast<double>(t), 1.0, batch);
    mkt.run_round(ingestor.ingest(batch), result);
    digest_round(result, digest);
  }
  return digest;
}

TEST(MarketScale, StreamedHorizonByteIdenticalAcrossThreadCounts) {
  const scale_setup setup = build_setup();
  const std::vector<std::uint64_t> serial = run_horizon(setup, 1);
  EXPECT_FALSE(serial.empty());
  for (const std::size_t threads : {std::size_t{2},
                                    std::size_t{std::thread::hardware_concurrency()},
                                    std::size_t{0}}) {
    const std::vector<std::uint64_t> other = run_horizon(setup, threads);
    EXPECT_EQ(serial, other) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace ecrs
