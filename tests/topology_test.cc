// Tests for the backhaul topology model, the weighted fair share, the
// priority allocation knob, and a queueing-theory validation of the
// microservice simulation (M/M/1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/statistics.h"
#include "edge/cluster.h"
#include "edge/fair_share.h"
#include "edge/microservice.h"
#include "edge/topology.h"

namespace ecrs::edge {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// ---------------------------------------------------------------- topology

TEST(Topology, LinklessGraphIsDisconnected) {
  topology t(3);
  EXPECT_DOUBLE_EQ(t.latency(0, 0), 0.0);
  EXPECT_EQ(t.latency(0, 1), kInf);
  EXPECT_FALSE(t.connected());
}

TEST(Topology, SingleCloudIsTriviallyConnected) {
  topology t(1);
  EXPECT_TRUE(t.connected());
  EXPECT_DOUBLE_EQ(t.transfer_cost(0, 0, 5.0), 0.0);
}

TEST(Topology, FloydWarshallFindsMultiHopPaths) {
  topology t(4);
  t.add_link(0, 1, 1.0);
  t.add_link(1, 2, 2.0);
  t.add_link(2, 3, 3.0);
  t.add_link(0, 3, 10.0);
  t.finalize();
  EXPECT_DOUBLE_EQ(t.latency(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(t.latency(0, 3), 6.0);  // 1+2+3 beats the direct 10
  EXPECT_DOUBLE_EQ(t.latency(3, 0), 6.0);  // symmetric
  EXPECT_TRUE(t.connected());
}

TEST(Topology, ParallelLinksKeepTheCheaper) {
  topology t(2);
  t.add_link(0, 1, 5.0);
  t.add_link(0, 1, 2.0);
  t.finalize();
  EXPECT_DOUBLE_EQ(t.latency(0, 1), 2.0);
}

TEST(Topology, QueryBeforeFinalizeThrows) {
  topology t(2);
  t.add_link(0, 1, 1.0);
  EXPECT_THROW((void)t.latency(0, 1), check_error);
}

TEST(Topology, RejectsSelfLinksAndNegativeLatency) {
  topology t(2);
  EXPECT_THROW(t.add_link(0, 0, 1.0), check_error);
  EXPECT_THROW(t.add_link(0, 1, -1.0), check_error);
}

TEST(Topology, RingDiameter) {
  const topology t = topology::ring(6, 1.0);
  EXPECT_TRUE(t.connected());
  EXPECT_DOUBLE_EQ(t.latency(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.latency(0, 3), 3.0);  // halfway around
  EXPECT_DOUBLE_EQ(t.latency(0, 5), 1.0);  // wrap-around
}

TEST(Topology, StarRoutesThroughHub) {
  const topology t = topology::star(5, 2.0);
  EXPECT_TRUE(t.connected());
  EXPECT_DOUBLE_EQ(t.latency(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(t.latency(1, 4), 4.0);  // spoke-hub-spoke
}

TEST(Topology, MeshIsOneHopEverywhere) {
  const topology t = topology::mesh(4, 1.5);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(t.latency(i, j), i == j ? 0.0 : 1.5);
    }
  }
}

TEST(Topology, RandomGeometricIsAlwaysConnected) {
  rng gen(9);
  for (int trial = 0; trial < 10; ++trial) {
    const topology t = topology::random_geometric(12, 0.2, 10.0, gen);
    EXPECT_TRUE(t.connected());
  }
}

TEST(Topology, TransferCostScalesWithLatency) {
  const topology t = topology::ring(4, 2.0);
  EXPECT_DOUBLE_EQ(t.transfer_cost(0, 2, 0.5), 2.0);  // 2 hops * 2ms * 0.5
  EXPECT_THROW((void)t.transfer_cost(0, 1, -1.0), check_error);
}

TEST(Topology, TransferAcrossDisconnectedThrows) {
  topology t(2);
  t.finalize();
  EXPECT_THROW((void)t.transfer_cost(0, 1, 1.0), check_error);
}

// ------------------------------------------------ neighbors_by_latency

// Brute force reference: scan the Floyd–Warshall row and sort by
// (latency, region id).
std::vector<neighbor> brute_force_neighbors(const topology& t,
                                            std::uint32_t region,
                                            double max_latency) {
  std::vector<neighbor> out;
  for (std::uint32_t j = 0; j < t.clouds(); ++j) {
    if (j == region) continue;
    const double l = t.latency(region, j);
    if (l == kInf || l > max_latency) continue;
    out.push_back({j, l});
  }
  std::sort(out.begin(), out.end(), [](const neighbor& a, const neighbor& b) {
    if (a.latency != b.latency) return a.latency < b.latency;
    return a.region < b.region;
  });
  return out;
}

void expect_neighbors_match(const topology& t, double max_latency) {
  for (std::uint32_t r = 0; r < t.clouds(); ++r) {
    const auto expected = brute_force_neighbors(t, r, max_latency);
    const auto got = t.neighbors_by_latency(r, max_latency);
    ASSERT_EQ(got.size(), expected.size()) << "region " << r;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].region, expected[i].region) << "region " << r;
      EXPECT_DOUBLE_EQ(got[i].latency, expected[i].latency) << "region " << r;
    }
  }
}

TEST(TopologyNeighbors, MatchesBruteForceOnFactories) {
  expect_neighbors_match(topology::ring(7, 1.5), kInf);
  expect_neighbors_match(topology::star(6, 2.0), kInf);
  expect_neighbors_match(topology::mesh(5, 1.0), kInf);
  rng gen(17);
  for (int trial = 0; trial < 5; ++trial) {
    expect_neighbors_match(topology::random_geometric(15, 0.3, 8.0, gen),
                           kInf);
  }
}

TEST(TopologyNeighbors, LatencyBudgetTruncatesTheRow) {
  const topology t = topology::ring(8, 1.0);  // latencies 1..4 around
  rng gen(23);
  for (int trial = 0; trial < 5; ++trial) {
    const topology g = topology::random_geometric(12, 0.25, 10.0, gen);
    for (const double budget : {0.0, 0.5, 1.0, 2.5, 6.0}) {
      expect_neighbors_match(g, budget);
    }
  }
  expect_neighbors_match(t, 2.0);
  // Ascending prefix property: every budgeted row is a prefix of the
  // unbudgeted one.
  const auto full = t.neighbors_by_latency(0);
  const auto capped = t.neighbors_by_latency(0, 2.0);
  ASSERT_LE(capped.size(), full.size());
  for (std::size_t i = 0; i < capped.size(); ++i) {
    EXPECT_EQ(capped[i].region, full[i].region);
    EXPECT_LE(capped[i].latency, 2.0);
  }
}

TEST(TopologyNeighbors, LinklessAndUnfinalizedBehaviour) {
  topology t(3);
  EXPECT_TRUE(t.neighbors_by_latency(0).empty());  // linkless: empty rows
  t.add_link(0, 1, 1.0);
  EXPECT_THROW((void)t.neighbors_by_latency(0), check_error);  // stale
  t.finalize();
  ASSERT_EQ(t.neighbors_by_latency(0).size(), 1u);
  EXPECT_EQ(t.neighbors_by_latency(0)[0].region, 1u);
  EXPECT_TRUE(t.neighbors_by_latency(2).empty());  // still isolated
  EXPECT_THROW((void)t.neighbors_by_latency(3), check_error);
  EXPECT_THROW((void)t.neighbors_by_latency(0, -1.0), check_error);
}

// ----------------------------------------------------- weighted fair share

TEST(WeightedFairShare, ReducesToUnweightedWithEqualWeights) {
  const std::vector<double> demands = {3.0, 8.0, 1.0, 6.0};
  const std::vector<double> weights(4, 1.0);
  const auto weighted =
      weighted_max_min_fair_share(demands, weights, 10.0);
  const auto plain = max_min_fair_share(demands, 10.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    EXPECT_NEAR(weighted[i], plain[i], 1e-9);
  }
}

TEST(WeightedFairShare, HeavierWeightGetsLargerShareUnderContention) {
  // Both want everything; weight 3 vs 1 splits capacity 3:1.
  const auto alloc =
      weighted_max_min_fair_share({100.0, 100.0}, {3.0, 1.0}, 8.0);
  EXPECT_NEAR(alloc[0], 6.0, 1e-9);
  EXPECT_NEAR(alloc[1], 2.0, 1e-9);
}

TEST(WeightedFairShare, SatisfiedLightDemandFreesCapacity) {
  const auto alloc =
      weighted_max_min_fair_share({1.0, 100.0}, {1.0, 1.0}, 10.0);
  EXPECT_DOUBLE_EQ(alloc[0], 1.0);
  EXPECT_DOUBLE_EQ(alloc[1], 9.0);
}

TEST(WeightedFairShare, NeverExceedsCapacityOrDemand) {
  rng gen(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> demands(6);
    std::vector<double> weights(6);
    for (std::size_t i = 0; i < 6; ++i) {
      demands[i] = gen.uniform_real(0.0, 10.0);
      weights[i] = gen.uniform_real(0.5, 4.0);
    }
    const double capacity = gen.uniform_real(1.0, 20.0);
    const auto alloc =
        weighted_max_min_fair_share(demands, weights, capacity);
    double total = 0.0;
    for (std::size_t i = 0; i < 6; ++i) {
      EXPECT_LE(alloc[i], demands[i] + 1e-9);
      EXPECT_GE(alloc[i], -1e-12);
      total += alloc[i];
    }
    EXPECT_LE(total, capacity + 1e-9);
  }
}

TEST(WeightedFairShare, RejectsBadInput) {
  EXPECT_THROW(weighted_max_min_fair_share({1.0}, {1.0, 2.0}, 1.0),
               check_error);
  EXPECT_THROW(weighted_max_min_fair_share({1.0}, {0.0}, 1.0), check_error);
  EXPECT_THROW(weighted_max_min_fair_share({-1.0}, {1.0}, 1.0), check_error);
}

// -------------------------------------------------------- cluster priority

workload::request make_request(std::uint32_t service, double arrival,
                               double demand) {
  workload::request r;
  static std::uint64_t next_id = 1000000;
  r.id = next_id++;
  r.microservice = service;
  r.arrival_time = arrival;
  r.service_demand = demand;
  return r;
}

TEST(ClusterPriority, SensitiveServicesGetMoreUnderPressure) {
  cluster_config cfg;
  cfg.clouds = 1;
  cfg.capacity_per_cloud = 2.0;
  const std::vector<workload::qos_class> qos = {
      workload::qos_class::delay_sensitive,
      workload::qos_class::delay_tolerant};
  cluster c(cfg, qos);
  // Equal overload on both services.
  for (std::uint32_t s = 0; s < 2; ++s) {
    auto r = make_request(s, 0.0, 100.0);
    c.service(s).enqueue(r);
  }
  c.allocate_fair(1.0, /*sensitive_weight=*/3.0);
  EXPECT_GT(c.service(0).allocation(), c.service(1).allocation());
  const double total = c.service(0).allocation() + c.service(1).allocation();
  EXPECT_LE(total, 2.0 + 1e-9);
  EXPECT_NEAR(c.service(0).allocation(), 1.5, 1e-9);  // 3:1 split of 2

  // Weight 1 restores symmetric allocations.
  c.allocate_fair(1.0, 1.0);
  EXPECT_NEAR(c.service(0).allocation(), c.service(1).allocation(), 1e-9);
}

TEST(ClusterPriority, RejectsWeightBelowOne) {
  cluster_config cfg;
  cluster c(cfg, {workload::qos_class::delay_sensitive});
  EXPECT_THROW(c.allocate_fair(1.0, 0.5), check_error);
}

// ------------------------------------------------------ M/M/1 validation

TEST(QueueingValidation, MM1SojournTimeMatchesTheory) {
  // Poisson arrivals at rate λ = 0.6, service rate μ = 1.0 (allocation 1,
  // exponential demands with mean 1): M/M/1 mean sojourn W = 1/(μ−λ) = 2.5.
  microservice svc(0, workload::qos_class::delay_sensitive);
  svc.set_allocation(1.0);
  rng gen(42);
  const double lambda = 0.6;
  const double horizon = 200000.0;
  double now = 0.0;
  double last_advance = 0.0;
  running_stats waits;
  std::uint64_t round = 1;
  while (now < horizon) {
    now += gen.exponential(lambda);
    if (now >= horizon) break;
    svc.advance(last_advance, now - last_advance);
    last_advance = now;
    auto r = make_request(0, now, 0.0);
    r.service_demand = gen.exponential(1.0);
    svc.enqueue(r);
  }
  svc.advance(last_advance, 10000.0);  // drain
  const auto stats = svc.end_round(round, horizon, 1);
  // Theory: mean sojourn 2.5, utilization λ/μ = 0.6.
  EXPECT_NEAR(stats.mean_wait, 2.5, 0.25);
  EXPECT_GT(stats.served, 100000u);
}

}  // namespace
}  // namespace ecrs::edge
