#!/usr/bin/env python3
"""ecrs-lint: repo-specific C++ rules clang-tidy cannot express.

Registered as the `ecrs_lint` ctest (tests/CMakeLists.txt) and run by
tools/verify.sh in the lint stage. Rules (docs/ANALYSIS.md has the rationale):

  naked-throw      `throw` outside src/common/check.h. Invariant violations
                   must go through ECRS_CHECK / ECRS_CHECK_MSG so they carry
                   file:line context and raise ecrs::check_error uniformly.
  std-rand         std::rand / srand. All randomness flows through
                   ecrs::rng (common/rng.h) so experiments replay from a
                   single 64-bit seed.
  iostream-include #include <iostream> in src/ library code. The library
                   never writes to std streams behind the caller's back;
                   tools/, tests/, bench/, examples/ may.
  header-banner    every src/ header opens with a `//` comment banner
                   followed by #pragma once.
  nodiscard        value-returning public functions declared in
                   src/auction/*.h must be [[nodiscard]]: auction results
                   encode money and feasibility, silently dropping them is
                   always a bug.
  coverage-hot-loop src/auction/ssam.cc must not touch bid::coverage (the
                   per-bid heap-allocated vector). Every mechanism hot loop
                   goes through the compiled CSR view (auction/compiled.h);
                   bid::coverage_size() and coverage_state (which walk it
                   outside ssam.cc) remain fine.
  whitespace       no trailing whitespace, no tab indentation, file ends
                   with exactly one newline. (Also the clang-format
                   fallback baseline for toolchains without clang-format.)

Migrated rules — owned by tools/ecrs_analyze (call-graph aware, so they see
transitive violations the per-line regexes cannot) and OFF here by default;
`--include-migrated` re-enables the regex versions as a fallback for
environments where the analyzer is not wired up:

  auction-hot-alloc direct `new` / `std::make_unique` in the auction
                   hot-path files (src/auction/ssam.cc, compiled.h,
                   compiled.cc, msoa.cc). Superseded by the analyzer's
                   transitive `hot-alloc` rule over ECRS_HOT functions.
  des-std-function std::function in src/des/ headers. Superseded by the
                   analyzer's file rule of the same name. Only the public
                   `using callback = std::function<...>` alias on the
                   frozen reference engine is exempt.

Suppress a finding with `// ecrs-lint: allow(<rule>)` on the same line or
the line above.

Usage: ecrs_lint.py [--root REPO_ROOT] [--rules r1,r2,...]
                    [--include-migrated]
Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

LIBRARY_DIR = "src"
# Directories whose files get the whitespace rule only in addition to src/.
EXTRA_WHITESPACE_DIRS = ("tests", "tools", "bench", "examples")
CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}

ALLOW_RE = re.compile(r"ecrs-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Rules whose ownership moved to tools/ecrs_analyze; kept here as regex
# fallbacks behind --include-migrated.
MIGRATED_RULES = frozenset({"auction-hot-alloc", "des-std-function"})

# Auction files on the mechanism's critical path: selection, payments and
# the per-round MSOA driver. Kept allocation-free at steady state.
AUCTION_HOT_FILES = {
    "src/auction/ssam.cc",
    "src/auction/compiled.h",
    "src/auction/compiled.cc",
    "src/auction/msoa.cc",
}

# Function-declaration head: optional specifiers, a return type, a
# snake_case name, an opening paren — at class-member or namespace-scope
# indentation (continuation lines indent deeper and are skipped).
DECL_RE = re.compile(
    r"^\s{0,4}"
    r"(?:(?:virtual|static|constexpr|inline|friend|explicit)\s+)*"
    r"(?P<type>[A-Za-z_][\w:]*(?:<[^;(){}]*>)?(?:\s*const)?(?:\s*[&*])*)"
    r"\s+(?P<name>[a-z_]\w*)\s*\("
)

DECL_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "case", "else",
    "using", "typedef", "namespace", "template", "static_assert", "delete",
    "new", "throw", "operator", "catch", "co_return", "co_await", "define",
}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure
    so reported line numbers stay valid. ecrs-lint: allow() markers are
    honoured before stripping (see lint_file)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def allowed_rules(raw_lines: list[str], index: int) -> set[str]:
    """Rules suppressed for raw_lines[index] (same line or the line above)."""
    allowed: set[str] = set()
    for look in (index, index - 1):
        if 0 <= look < len(raw_lines):
            match = ALLOW_RE.search(raw_lines[look])
            if match:
                allowed.update(r.strip() for r in match.group(1).split(","))
    return allowed


def check_whitespace(path: Path, raw: str, findings: list[Finding]) -> None:
    lines = raw.split("\n")
    for num, line in enumerate(lines, start=1):
        if line != line.rstrip():
            findings.append(Finding(path, num, "whitespace",
                                    "trailing whitespace"))
        indent = line[: len(line) - len(line.lstrip())]
        if "\t" in indent:
            findings.append(Finding(path, num, "whitespace",
                                    "tab indentation (use spaces)"))
    if raw and not raw.endswith("\n"):
        findings.append(Finding(path, len(lines), "whitespace",
                                "missing final newline"))
    elif raw.endswith("\n\n"):
        findings.append(Finding(path, len(lines), "whitespace",
                                "multiple trailing newlines"))


def check_header_banner(path: Path, raw_lines: list[str],
                        findings: list[Finding]) -> None:
    num = 0
    saw_banner = False
    for num, line in enumerate(raw_lines, start=1):
        stripped = line.strip()
        if stripped.startswith("//"):
            saw_banner = True
            continue
        if stripped == "#pragma once":
            if not saw_banner:
                findings.append(Finding(
                    path, num, "header-banner",
                    "#pragma once must be preceded by a // comment banner "
                    "describing the header"))
            return
        if stripped:
            break
    findings.append(Finding(
        path, max(num, 1), "header-banner",
        "header must start with a // comment banner followed by "
        "#pragma once"))


def check_nodiscard(path: Path, raw_lines: list[str],
                    stripped_lines: list[str],
                    findings: list[Finding]) -> None:
    for idx, line in enumerate(stripped_lines):
        match = DECL_RE.match(line)
        if not match:
            continue
        ret, name = match.group("type"), match.group("name")
        if ret in ("void", "explicit", "virtual", "static", "constexpr",
                   "inline", "friend"):
            continue  # void return, or a constructor's specifier
        if name in DECL_KEYWORDS or ret in DECL_KEYWORDS:
            continue
        if "operator" in line or "= delete" in line or "#" in line:
            continue
        context = " ".join(stripped_lines[max(0, idx - 1): idx + 1])
        if "[[nodiscard]]" in context:
            continue
        if "nodiscard" in allowed_rules(raw_lines, idx):
            continue
        findings.append(Finding(
            path, idx + 1, "nodiscard",
            f"public function '{name}' returns {ret} but is not "
            "[[nodiscard]] (auction results carry money/feasibility; add "
            "the attribute or '// ecrs-lint: allow(nodiscard)' for "
            "side-effecting mutators)"))


def lint_file(path: Path, rel: Path, findings: list[Finding],
              include_migrated: bool = False) -> None:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.split("\n")

    check_whitespace(path, raw, findings)

    in_library = rel.parts and rel.parts[0] == LIBRARY_DIR
    if not in_library:
        return

    stripped_lines = strip_comments_and_strings(raw).split("\n")
    is_check_header = rel.as_posix() == "src/common/check.h"

    for idx, line in enumerate(stripped_lines):
        allowed = None  # computed lazily; most lines are clean

        def allow(rule: str) -> bool:
            nonlocal allowed
            if allowed is None:
                allowed = allowed_rules(raw_lines, idx)
            return rule in allowed

        if not is_check_header and re.search(r"\bthrow\b", line):
            if not allow("naked-throw"):
                findings.append(Finding(
                    path, idx + 1, "naked-throw",
                    "use ECRS_CHECK / ECRS_CHECK_MSG (common/check.h) "
                    "instead of a naked throw"))
        if re.search(r"\bstd::rand\b|(?<![\w:])s?rand\s*\(", line):
            if not allow("std-rand"):
                findings.append(Finding(
                    path, idx + 1, "std-rand",
                    "use ecrs::rng (common/rng.h): experiments must replay "
                    "from a single seed"))
        if re.search(r'#\s*include\s*<iostream>', line):
            if not allow("iostream-include"):
                findings.append(Finding(
                    path, idx + 1, "iostream-include",
                    "library code must not include <iostream>; return data "
                    "and let tools/ print it"))
        if (include_migrated
                and rel.parts[:2] == (LIBRARY_DIR, "des")
                and path.suffix == ".h"
                and "std::function" in line
                and not re.search(r"\busing\s+callback\s*=", line)):
            if not allow("des-std-function"):
                findings.append(Finding(
                    path, idx + 1, "des-std-function",
                    "DES headers must store callbacks via des/callback.h "
                    "basic_callback (inline storage), not std::function "
                    "(one heap allocation per scheduled event); only the "
                    "reference engine's public `using callback = ...` "
                    "alias is exempt"))
        if (include_migrated
                and rel.as_posix() in AUCTION_HOT_FILES
                and re.search(r"\bnew\b|\bmake_unique\b", line)):
            if not allow("auction-hot-alloc"):
                findings.append(Finding(
                    path, idx + 1, "auction-hot-alloc",
                    "auction hot-path files must not hit the global "
                    "allocator: use ssam_scratch buffers or the thread's "
                    "bump arena (common/arena.h); allowlist one-time "
                    "workspace construction with "
                    "'// ecrs-lint: allow(auction-hot-alloc)'"))
        if (rel.as_posix() == "src/auction/ssam.cc"
                and re.search(r"(\.|->)coverage\b", line)):
            if not allow("coverage-hot-loop"):
                findings.append(Finding(
                    path, idx + 1, "coverage-hot-loop",
                    "ssam.cc hot loops must use the compiled CSR view "
                    "(auction/compiled.h), not bid::coverage "
                    "(coverage_size() is fine)"))

    if path.suffix == ".h":
        check_header_banner(path, raw_lines, findings)
        if rel.parts[:2] == (LIBRARY_DIR, "auction"):
            check_nodiscard(path, raw_lines, stripped_lines, findings)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--rules", default="",
                        help="comma-separated subset of rules to report")
    parser.add_argument("--include-migrated", action="store_true",
                        help="also run the regex fallbacks for rules now "
                             "owned by tools/ecrs_analyze "
                             "(auction-hot-alloc, des-std-function)")
    args = parser.parse_args()

    root = Path(args.root).resolve()
    if not (root / LIBRARY_DIR).is_dir():
        print(f"ecrs-lint: {root} has no {LIBRARY_DIR}/ directory",
              file=sys.stderr)
        return 2

    findings: list[Finding] = []
    scan_dirs = (LIBRARY_DIR,) + EXTRA_WHITESPACE_DIRS
    files = 0
    for top in scan_dirs:
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CXX_SUFFIXES or not path.is_file():
                continue
            files += 1
            lint_file(path, path.relative_to(root), findings,
                      include_migrated=args.include_migrated)

    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",")}
        findings = [f for f in findings if f.rule in wanted]

    for finding in findings:
        print(finding)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"ecrs-lint: {files} files scanned, {status}")
    return 0 if not findings else 1


if __name__ == "__main__":
    sys.exit(main())
