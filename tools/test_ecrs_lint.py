#!/usr/bin/env python3
"""Unit tests for every tools/ecrs_lint.py regex rule.

Each test builds a minimal file tree in a temp dir, runs lint_file on one
file, and asserts on the (rule, line) pairs produced — both that the rule
fires on the bad input and that it stays quiet on the good/suppressed
variant. Registered as the `ecrs_lint_selftest` ctest.
"""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import ecrs_lint  # noqa: E402


def run_lint(rel: str, content: str,
             include_migrated: bool = False) -> list[tuple[str, int]]:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        findings: list[ecrs_lint.Finding] = []
        ecrs_lint.lint_file(path, Path(rel), findings,
                            include_migrated=include_migrated)
        return [(f.rule, f.line) for f in findings]


BANNER = "// Test header.\n#pragma once\n"


class NakedThrowTest(unittest.TestCase):
    def test_fires(self):
        out = run_lint("src/auction/x.cc",
                       'void f() { throw 1; }\n')
        self.assertIn(("naked-throw", 1), out)

    def test_check_header_exempt(self):
        out = run_lint("src/common/check.h",
                       BANNER + 'inline void f() { throw 1; }\n')
        self.assertNotIn("naked-throw", [r for r, _ in out])

    def test_allow_comment(self):
        out = run_lint("src/auction/x.cc",
                       '// ecrs-lint: allow(naked-throw)\n'
                       'void f() { throw 1; }\n')
        self.assertNotIn("naked-throw", [r for r, _ in out])

    def test_comment_is_stripped(self):
        out = run_lint("src/auction/x.cc",
                       'void f() {}  // may throw\n')
        self.assertNotIn("naked-throw", [r for r, _ in out])


class StdRandTest(unittest.TestCase):
    def test_fires(self):
        out = run_lint("src/workload/x.cc",
                       'int f() { return std::rand(); }\n')
        self.assertIn(("std-rand", 1), out)

    def test_bare_rand(self):
        out = run_lint("src/workload/x.cc",
                       'int f() { return rand(); }\n')
        self.assertIn(("std-rand", 1), out)

    def test_random_word_ok(self):
        out = run_lint("src/workload/x.cc",
                       'int strand(int x);\n'
                       'int f() { return strand(2); }\n')
        self.assertNotIn("std-rand", [r for r, _ in out])


class IostreamIncludeTest(unittest.TestCase):
    def test_fires(self):
        out = run_lint("src/harness/x.cc", '#include <iostream>\n')
        self.assertIn(("iostream-include", 1), out)

    def test_other_include_ok(self):
        out = run_lint("src/harness/x.cc", '#include <ostream>\n')
        self.assertNotIn("iostream-include", [r for r, _ in out])

    def test_outside_src_ok(self):
        out = run_lint("tools/x.cc", '#include <iostream>\n')
        self.assertNotIn("iostream-include", [r for r, _ in out])


class HeaderBannerTest(unittest.TestCase):
    def test_missing_banner(self):
        out = run_lint("src/des/x.h", '#pragma once\n')
        self.assertIn("header-banner", [r for r, _ in out])

    def test_banner_ok(self):
        out = run_lint("src/des/x.h", BANNER)
        self.assertNotIn("header-banner", [r for r, _ in out])

    def test_cc_exempt(self):
        out = run_lint("src/des/x.cc", 'int x = 0;\n')
        self.assertNotIn("header-banner", [r for r, _ in out])


class NodiscardTest(unittest.TestCase):
    def test_fires(self):
        out = run_lint("src/auction/x.h",
                       BANNER + 'double payment(int w);\n')
        self.assertIn(("nodiscard", 3), out)

    def test_attribute_ok(self):
        out = run_lint("src/auction/x.h",
                       BANNER + '[[nodiscard]] double payment(int w);\n')
        self.assertNotIn("nodiscard", [r for r, _ in out])

    def test_void_ok(self):
        out = run_lint("src/auction/x.h",
                       BANNER + 'void reset(int w);\n')
        self.assertNotIn("nodiscard", [r for r, _ in out])

    def test_allow_comment(self):
        out = run_lint("src/auction/x.h",
                       BANNER + '// ecrs-lint: allow(nodiscard)\n'
                                'double apply(int w);\n')
        self.assertNotIn("nodiscard", [r for r, _ in out])

    def test_non_auction_header_exempt(self):
        out = run_lint("src/des/x.h",
                       BANNER + 'double payment(int w);\n')
        self.assertNotIn("nodiscard", [r for r, _ in out])


class CoverageHotLoopTest(unittest.TestCase):
    def test_fires(self):
        out = run_lint("src/auction/ssam.cc",
                       'int f(const bid& b) { return b.coverage.size(); }\n')
        self.assertIn(("coverage-hot-loop", 1), out)

    def test_coverage_size_ok(self):
        out = run_lint("src/auction/ssam.cc",
                       'int f(const bid& b) { return b.coverage_size(); }\n')
        self.assertNotIn("coverage-hot-loop", [r for r, _ in out])

    def test_other_file_exempt(self):
        out = run_lint("src/auction/bid.cc",
                       'int f(const bid& b) { return b.coverage.size(); }\n')
        self.assertNotIn("coverage-hot-loop", [r for r, _ in out])


class WhitespaceTest(unittest.TestCase):
    def test_trailing_whitespace(self):
        out = run_lint("src/common/x.cc", 'int x = 0;  \n')
        self.assertIn(("whitespace", 1), out)

    def test_tab_indent(self):
        out = run_lint("src/common/x.cc", '\tint x = 0;\n')
        self.assertIn(("whitespace", 1), out)

    def test_missing_final_newline(self):
        out = run_lint("src/common/x.cc", 'int x = 0;')
        self.assertIn("whitespace", [r for r, _ in out])

    def test_multiple_trailing_newlines(self):
        out = run_lint("src/common/x.cc", 'int x = 0;\n\n')
        self.assertIn("whitespace", [r for r, _ in out])

    def test_clean(self):
        out = run_lint("src/common/x.cc", 'int x = 0;\n')
        self.assertEqual(out, [])

    def test_applies_outside_src(self):
        out = run_lint("tests/x.cc", 'int x = 0;  \n')
        self.assertIn(("whitespace", 1), out)


class MigratedRulesTest(unittest.TestCase):
    """auction-hot-alloc / des-std-function are analyzer-owned; the regex
    versions only run with include_migrated=True."""

    def test_hot_alloc_off_by_default(self):
        src = 'void f() { auto* p = new int[4]; delete[] p; }\n'
        out = run_lint("src/auction/ssam.cc", src)
        self.assertNotIn("auction-hot-alloc", [r for r, _ in out])

    def test_hot_alloc_fallback(self):
        src = 'void f() { auto* p = new int[4]; delete[] p; }\n'
        out = run_lint("src/auction/ssam.cc", src, include_migrated=True)
        self.assertIn(("auction-hot-alloc", 1), out)

    def test_std_function_off_by_default(self):
        src = BANNER + 'struct e { std::function<void()> fire; };\n'
        out = run_lint("src/des/x.h", src)
        self.assertNotIn("des-std-function", [r for r, _ in out])

    def test_std_function_fallback(self):
        src = BANNER + 'struct e { std::function<void()> fire; };\n'
        out = run_lint("src/des/x.h", src, include_migrated=True)
        self.assertIn(("des-std-function", 3), out)

    def test_callback_alias_exempt(self):
        src = BANNER + 'using callback = std::function<void()>;\n'
        out = run_lint("src/des/x.h", src, include_migrated=True)
        self.assertNotIn("des-std-function", [r for r, _ in out])


if __name__ == "__main__":
    unittest.main(verbosity=2)
