// ecrs_cli — command-line front end for the auction library.
//
//   ecrs_cli generate --out=market.txt [--sellers=25 --demanders=5
//                                       --bids=2 --seed=1]
//   ecrs_cli solve --in=market.txt [--mechanism=ssam|ssam-critical|vcg|
//                                   pay-as-bid|exact] [--budget=W]
//   ecrs_cli generate-online --out=market.txt [--rounds=10 ...]
//   ecrs_cli solve-online --in=market.txt [--alpha=0]
//
// Instances use the text format of auction/io.h, so markets can be
// generated once, archived, and solved reproducibly by any mechanism.
#include <cstdio>
#include <string>

#include "auction/baselines.h"
#include "auction/exact.h"
#include "auction/instance_gen.h"
#include "auction/io.h"
#include "auction/msoa.h"
#include "auction/properties.h"
#include "auction/ssam.h"
#include "auction/vcg.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/table.h"

namespace {

using namespace ecrs;

int usage() {
  std::printf(
      "usage: ecrs_cli <generate|solve|generate-online|solve-online> "
      "[flags]\n"
      "  generate        --out=FILE [--sellers=N --demanders=N --bids=N "
      "--seed=N]\n"
      "  solve           --in=FILE  [--mechanism=ssam|ssam-critical|vcg|"
      "pay-as-bid|exact] [--budget=W]\n"
      "  generate-online --out=FILE [--rounds=T plus generate flags]\n"
      "  solve-online    --in=FILE  [--alpha=A]\n");
  return 2;
}

auction::instance_config stage_from_flags(const flags& f) {
  auction::instance_config cfg;
  cfg.sellers = static_cast<std::size_t>(f.get_int("sellers", 25));
  cfg.demanders = static_cast<std::size_t>(f.get_int("demanders", 5));
  cfg.bids_per_seller = static_cast<std::size_t>(f.get_int("bids", 2));
  return cfg;
}

int cmd_generate(const flags& f) {
  const std::string out = f.get_string("out", "");
  if (out.empty()) return usage();
  rng gen(static_cast<std::uint64_t>(f.get_int("seed", 1)));
  const auto inst = auction::random_instance(stage_from_flags(f), gen);
  auction::write_instance_file(out, inst);
  std::printf("wrote %zu bids from %zu sellers for %zu demanders to %s\n",
              inst.bids.size(), inst.seller_count(), inst.demanders(),
              out.c_str());
  return 0;
}

int cmd_generate_online(const flags& f) {
  const std::string out = f.get_string("out", "");
  if (out.empty()) return usage();
  rng gen(static_cast<std::uint64_t>(f.get_int("seed", 1)));
  auction::online_config cfg;
  cfg.stage = stage_from_flags(f);
  cfg.rounds = static_cast<std::size_t>(f.get_int("rounds", 10));
  const auto inst = auction::random_online_instance(cfg, gen);
  auction::write_online_instance_file(out, inst);
  std::printf("wrote %zu-round market with %zu sellers to %s\n",
              inst.horizon(), inst.sellers.size(), out.c_str());
  return 0;
}

void print_outcome(const auction::single_stage_instance& inst,
                   const std::vector<std::size_t>& winners,
                   const std::vector<double>& payments, bool feasible,
                   double social_cost) {
  table t({"winner", "seller", "bid", "amount", "price", "payment"});
  for (std::size_t pos = 0; pos < winners.size(); ++pos) {
    const auction::bid& b = inst.bids[winners[pos]];
    t.add_row({static_cast<long long>(pos),
               static_cast<long long>(b.seller),
               static_cast<long long>(b.index),
               static_cast<long long>(b.amount), b.price,
               pos < payments.size() ? payments[pos] : b.price});
  }
  std::printf("%s", t.to_ascii().c_str());
  double paid = 0.0;
  for (double p : payments) paid += p;
  std::printf("feasible: %s   social cost: %.3f   payments: %.3f\n",
              feasible ? "yes" : "NO", social_cost, paid);
}

int cmd_solve(const flags& f) {
  const std::string in = f.get_string("in", "");
  if (in.empty()) return usage();
  const auto inst = auction::read_instance_file(in);
  const std::string mech = f.get_string("mechanism", "ssam");

  if (mech == "ssam" || mech == "ssam-critical") {
    auction::ssam_options opts;
    if (mech == "ssam-critical") {
      opts.rule = auction::payment_rule::critical_value;
    }
    opts.payment_budget = f.get_double("budget", 0.0);
    const auto res = auction::run_ssam(inst, opts);
    std::vector<std::size_t> winners;
    std::vector<double> payments;
    for (const auto& w : res.winners) {
      winners.push_back(w.bid_index);
      payments.push_back(w.payment);
    }
    print_outcome(inst, winners, payments, res.feasible, res.social_cost);
    std::printf("approximation bound W*Xi: %.3f\n", res.ratio_bound);
    return res.feasible ? 0 : 1;
  }
  if (mech == "vcg") {
    const auto res =
        auction::run_vcg(inst, 4000000, f.get_double("reserve", 0.0));
    print_outcome(inst, res.winners, res.payments, res.feasible,
                  res.social_cost);
    if (!res.pivotal_monopolists.empty()) {
      std::printf("note: %zu pivotal winner(s) paid the fallback price\n",
                  res.pivotal_monopolists.size());
    }
    return res.feasible ? 0 : 1;
  }
  if (mech == "pay-as-bid") {
    const auto res = auction::pay_as_bid_greedy(inst);
    std::vector<double> payments;
    for (std::size_t idx : res.winners) payments.push_back(inst.bids[idx].price);
    print_outcome(inst, res.winners, payments, res.feasible, res.social_cost);
    return res.feasible ? 0 : 1;
  }
  if (mech == "exact") {
    const auto res = auction::solve_exact(inst);
    std::vector<double> payments;
    for (std::size_t idx : res.chosen) payments.push_back(inst.bids[idx].price);
    print_outcome(inst, res.chosen, payments, res.feasible, res.cost);
    std::printf("exact: %s (nodes: %zu)\n", res.exact ? "yes" : "budget hit",
                res.nodes);
    return res.feasible ? 0 : 1;
  }
  std::printf("unknown mechanism '%s'\n", mech.c_str());
  return usage();
}

int cmd_solve_online(const flags& f) {
  const std::string in = f.get_string("in", "");
  if (in.empty()) return usage();
  const auto inst = auction::read_online_instance_file(in);
  auction::msoa_options opts;
  opts.alpha = f.get_double("alpha", 0.0);
  const auto res = auction::run_msoa(inst, opts);
  table t({"round", "admitted", "winners", "cost", "paid", "feasible"});
  for (const auto& round : res.rounds) {
    double paid = 0.0;
    for (double p : round.payments) paid += p;
    t.add_row({static_cast<long long>(round.round),
               static_cast<long long>(round.admitted_bids),
               static_cast<long long>(round.winner_bids.size()),
               round.social_cost, paid,
               std::string(round.feasible ? "yes" : "NO")});
  }
  std::printf("%s", t.to_ascii().c_str());
  std::printf(
      "total cost %.3f, payments %.3f, alpha %.3f, beta %.3f, "
      "guarantee %.3f\n",
      res.social_cost, res.total_payment, res.alpha, res.beta,
      res.competitive_bound);
  const double bound = auction::offline_lp_bound(inst);
  std::printf("offline LP bound %.3f => realized ratio %.3f\n", bound,
              bound > 0.0 ? res.social_cost / bound : 0.0);
  return res.feasible ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const ecrs::flags f(argc - 1, argv + 1);
  try {
    if (command == "generate") return cmd_generate(f);
    if (command == "solve") return cmd_solve(f);
    if (command == "generate-online") return cmd_generate_online(f);
    if (command == "solve-online") return cmd_solve_online(f);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
