#!/usr/bin/env python3
"""bench_compare: diff a fresh benchmark JSON against a committed baseline.

Guards against perf regressions slipping into a PR: re-run the bench binary
(e.g. `build/bench/instance_layout` or `build/bench/micro_benchmarks
--benchmark_out_format=json`), then compare its output against the
repository's committed BENCH_pr*.json snapshot. A named timing that got more
than THRESHOLD slower (default 25%) fails the comparison; a baseline timing
missing from the fresh run only warns (bench workloads evolve — see
docs/API.md for the BENCH JSON schema).

Accepted input formats (auto-detected, both sides):
  - the repo BENCH schema:   {"results_ns_mean": {name: {"mean_ns": ...}}}
  - google-benchmark JSON:   {"benchmarks": [{"name": ..., "real_time": ...,
                              "time_unit": "ns"|"us"|"ms"|"s"}]}

Usage:
  bench_compare.py --baseline BENCH_pr4.json --fresh fresh.json \
      [--threshold 0.25] [--only name1,name2,...] [--allow name1,name2,...] \
      [--max-rss-mb MB]

--max-rss-mb additionally gates the fresh run's resident-set ceiling: if the
fresh JSON carries a "peak_rss_mb" (or "stream_peak_rss_mb") field above the
given bound, the comparison fails even when every timing lane is within
threshold. Fresh runs without an RSS field only warn (older bench binaries).

Exit status: 0 within threshold, 1 regression found, 2 usage/parse error.

Lanes named in --allow may regress without failing the comparison (they are
reported as "allowed regression" warnings instead). This is the escape
hatch for wall-clock-noisy lanes (end-to-end workloads on shared runners)
while the deterministic micro-kernel lanes stay blocking: CI runs this
script as a hard gate with the noisy lanes allowlisted, instead of
continue-on-error for the whole step.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_results(path: Path) -> dict[str, float]:
    """Map benchmark name -> mean wall clock in nanoseconds."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_compare: cannot read {path}: {err}")

    results: dict[str, float] = {}
    if "results_ns_mean" in doc:  # repo BENCH schema
        for name, entry in doc["results_ns_mean"].items():
            results[name] = float(entry["mean_ns"])
    elif "benchmarks" in doc:  # google-benchmark --benchmark_out JSON
        for entry in doc["benchmarks"]:
            if entry.get("run_type") == "aggregate":
                continue
            unit = TIME_UNIT_NS.get(entry.get("time_unit", "ns"))
            if unit is None:
                raise SystemExit(
                    f"bench_compare: {path}: unknown time_unit "
                    f"{entry.get('time_unit')!r}")
            results[entry["name"]] = float(entry["real_time"]) * unit
    else:
        raise SystemExit(
            f"bench_compare: {path}: neither 'results_ns_mean' nor "
            "'benchmarks' found (see docs/API.md for the schema)")
    if not results:
        raise SystemExit(f"bench_compare: {path}: no benchmark entries")
    return results


def load_rss_mb(path: Path) -> float | None:
    """Peak resident set (MB) reported by a repo-schema bench JSON, if any."""
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    values = [float(doc[key]) for key in ("peak_rss_mb", "stream_peak_rss_mb")
              if key in doc and isinstance(doc[key], (int, float))]
    return max(values) if values else None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_pr*.json snapshot")
    parser.add_argument("--fresh", required=True,
                        help="JSON emitted by the freshly-run bench binary")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="allowed relative slowdown (default 0.25 = 25%%)")
    parser.add_argument("--only", default="",
                        help="comma-separated subset of names to compare")
    parser.add_argument("--allow", default="",
                        help="comma-separated names whose regressions only "
                             "warn (noisy lanes; the rest stay blocking)")
    parser.add_argument("--max-rss-mb", type=float, default=0.0,
                        help="fail if the fresh run's reported peak RSS "
                             "exceeds this bound in MB (0 = no RSS gate)")
    args = parser.parse_args()
    if not 0.0 < args.threshold < 10.0:
        print("bench_compare: --threshold out of range", file=sys.stderr)
        return 2

    baseline = load_results(Path(args.baseline))
    fresh = load_results(Path(args.fresh))
    if args.only:
        wanted = {n.strip() for n in args.only.split(",") if n.strip()}
        baseline = {n: v for n, v in baseline.items() if n in wanted}
        missing = wanted - set(baseline)
        if missing:
            print(f"bench_compare: --only names not in baseline: "
                  f"{', '.join(sorted(missing))}", file=sys.stderr)
            return 2

    allowed = {n.strip() for n in args.allow.split(",") if n.strip()}
    unknown_allowed = allowed - set(baseline)
    if unknown_allowed:
        print(f"bench_compare: --allow names not in baseline: "
              f"{', '.join(sorted(unknown_allowed))}", file=sys.stderr)
        return 2

    regressions = 0
    allowed_regressions = 0
    width = max((len(n) for n in baseline), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  ratio")
    for name in sorted(baseline):
        base_ns = baseline[name]
        if name not in fresh:
            print(f"{name:<{width}}  {base_ns:>10.0f}ns  {'MISSING':>12}  "
                  "(warn: not measured by the fresh run)")
            continue
        fresh_ns = fresh[name]
        ratio = fresh_ns / base_ns if base_ns > 0 else float("inf")
        verdict = ""
        if ratio > 1.0 + args.threshold:
            if name in allowed:
                verdict = f"  allowed regression (> +{args.threshold:.0%})"
                allowed_regressions += 1
            else:
                verdict = f"  REGRESSION (> +{args.threshold:.0%})"
                regressions += 1
        print(f"{name:<{width}}  {base_ns:>10.0f}ns  {fresh_ns:>10.0f}ns  "
              f"{ratio:5.2f}x{verdict}")

    if args.max_rss_mb > 0.0:
        rss = load_rss_mb(Path(args.fresh))
        if rss is None:
            print("bench_compare: fresh run reports no peak_rss_mb "
                  "(warn: RSS gate skipped)", file=sys.stderr)
        elif rss > args.max_rss_mb:
            print(f"bench_compare: peak RSS {rss:.1f} MB exceeds the "
                  f"--max-rss-mb {args.max_rss_mb:.1f} MB bound",
                  file=sys.stderr)
            regressions += 1
        else:
            print(f"peak RSS {rss:.1f} MB within {args.max_rss_mb:.1f} MB")

    if allowed_regressions:
        print(f"bench_compare: {allowed_regressions} allowed regression(s) "
              "on allowlisted lanes (not counted)", file=sys.stderr)
    if regressions:
        print(f"bench_compare: {regressions} regression(s) beyond "
              f"+{args.threshold:.0%}", file=sys.stderr)
        return 1
    print("bench_compare: within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
