"""Entry point: `python3 tools/ecrs_analyze [args]`.

The package directory goes on sys.path so the sibling modules import as
top-level names — this makes `python3 tools/ecrs_analyze` (directory
execution) and `python3 -m tools.ecrs_analyze` behave identically.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
