"""Shared IR between the front-ends and the checks.

Both front-ends (textfe, clangfe) lower a C++ file to the same three-part
view so checks.py never knows which one produced it:

  Function   — a definition (or an attributed declaration) with its purity
               markers, the facts observed in its body, and its call sites.
  Fact       — one observation at a source line. Graph facts (alloc / lock /
               throw / block) only matter when reachable from an ECRS_HOT
               root; file facts (nondet / unordered-iter / ...) are findings
               by themselves when the file is in a result-affecting scope.
  Module     — one parsed file: functions, file facts, and the
               `// ecrs-analyze: allow(rule)` suppression table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Graph fact kinds: forbidden transitively below an ECRS_HOT root.
GRAPH_FACT_RULES = {
    "alloc": "hot-alloc",
    "lock": "hot-lock",
    "throw": "hot-throw",
    "block": "hot-block",
}

# File fact kinds: the fact kind doubles as the rule id.
FILE_FACT_RULES = (
    "nondet-source",
    "unordered-iter",
    "float-key",
    "sentinel-width",
    "des-std-function",
)

ALL_RULES = {
    "hot-alloc": "ECRS_HOT function transitively reaches the global "
                 "allocator (new / malloc / make_unique / make_shared)",
    "hot-lock": "ECRS_HOT function transitively acquires a mutex",
    "hot-throw": "ECRS_HOT function transitively throws",
    "hot-block": "ECRS_HOT function transitively blocks "
                 "(parallel_for / wait / join / sleep)",
    "nondet-source": "result-affecting code calls rand / time / "
                     "std::random_device (use ecrs::rng)",
    "unordered-iter": "range-for over an unordered container in "
                      "result-affecting code (iteration order is not "
                      "deterministic)",
    "float-key": "map/set keyed by float or double in result-affecting code",
    "sentinel-width": "kNoIndex / kNoSeller compared against a value whose "
                      "declared type is not a 32-bit unsigned integer",
    "des-std-function": "std::function in a DES header (des/callback.h "
                        "stores callbacks inline; std::function heap-"
                        "allocates per event)",
}


@dataclass
class Fact:
    kind: str
    file: str
    line: int
    detail: str


@dataclass
class CallSite:
    callee: str  # simple (unqualified) name used for in-graph resolution
    file: str
    line: int
    # True when the call went through `.` or `->` — such calls only resolve
    # to member functions (a free function of the same name is a different
    # entity).
    member: bool = False


@dataclass
class Function:
    name: str  # display name, possibly qualified
    # Resolution / attribute-merge key: `Record::name` for member functions
    # (both in-class bodies and out-of-line `Record::f` definitions), the
    # bare name for free functions. Keeps an ECRS_HOT on one class's method
    # from leaking onto an unrelated class's identically named method.
    key: str
    file: str
    line: int
    hot: bool = False
    escape: bool = False
    is_definition: bool = True
    member: bool = False
    facts: list[Fact] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


@dataclass
class Module:
    path: str  # path as reported in findings (relative to --root)
    functions: list[Function] = field(default_factory=list)
    file_facts: list[Fact] = field(default_factory=list)
    # line number (1-based) -> set of rule ids allowed on that line
    allows: dict[int, set[str]] = field(default_factory=dict)


@dataclass
class Finding:
    rule: str
    file: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"
