"""Rule evaluation over the front-end-neutral IR.

Two families:

  * Graph rules (hot-alloc / hot-lock / hot-throw / hot-block): DFS from
    every ECRS_HOT function through call edges resolved by simple name
    within the analyzed set. Traversal stops at ECRS_HOT_ESCAPE functions
    and ignores their facts. At most one finding per (hot function, rule):
    the first offending chain in source order, reported at the hot
    function's definition with the full chain in the message.

  * File rules (nondet-source / unordered-iter / float-key /
    sentinel-width / des-std-function): per-line facts, filtered by scope —
    determinism rules only fire in result-affecting directories,
    des-std-function only in DES headers. --force-scope lifts the filters
    (used by the corpus tests).

Suppression: `// ecrs-analyze: allow(rule)` on the finding line or the line
above. Chain findings accept the suppression at either end of the chain
(the hot root or the offending site).
"""

from __future__ import annotations

from model import Finding, Function, Module, GRAPH_FACT_RULES

# Directories whose code feeds auction results, sweep tables or DES
# trajectories; determinism rules apply here.
RESULT_SCOPE = ("src/auction", "src/harness", "src/des", "src/demand",
                "src/workload")
DES_HEADER_SCOPE = "src/des"


def _norm(path: str) -> str:
    return path.replace("\\", "/")


def _in_result_scope(path: str) -> bool:
    p = _norm(path)
    return any(p.startswith(scope + "/") or ("/" + scope + "/") in p
               for scope in RESULT_SCOPE)


def _is_des_header(path: str) -> bool:
    p = _norm(path)
    in_des = p.startswith(DES_HEADER_SCOPE + "/") or \
        ("/" + DES_HEADER_SCOPE + "/") in p
    return in_des and p.endswith(".h")


class _Index:
    """Key -> functions, with declaration attributes merged into
    definitions (an ECRS_HOT_ESCAPE on a header prototype marks the
    out-of-line definition too). Keys are `Record::name` for members, so
    the merge never crosses between two classes' identically named
    methods. Call resolution goes through the simple name — a call site
    only carries the unqualified spelling — and over-approximates when
    several entities share it, except that `.`/`->` calls are restricted
    to member functions."""

    def __init__(self, modules: list[Module]):
        self.by_key: dict[str, list[Function]] = {}
        self.by_simple: dict[str, list[Function]] = {}
        for mod in modules:
            for fn in mod.functions:
                self.by_key.setdefault(fn.key, []).append(fn)
                simple = fn.key.split("::")[-1]
                self.by_simple.setdefault(simple, []).append(fn)
        for fns in self.by_key.values():
            hot = any(f.hot for f in fns)
            escape = any(f.escape for f in fns)
            if escape:
                for f in fns:
                    f.escape = True
            elif hot:
                for f in fns:
                    f.hot = True

    def definitions(self, callee: str,
                    member: bool = False) -> list[Function]:
        fns = self.by_simple.get(callee, [])
        return [f for f in fns
                if f.is_definition and (f.member or not member)]

    def hot_roots(self) -> list[Function]:
        roots = [f for fns in self.by_key.values() for f in fns
                 if f.hot and not f.escape and f.is_definition]
        return sorted(roots, key=lambda f: (f.file, f.line))


def _suppressed(rule: str, file: str, line: int,
                allows_by_file: dict[str, dict[int, set[str]]]) -> bool:
    table = allows_by_file.get(_norm(file), {})
    for look in (line, line - 1):
        rules = table.get(look)
        if rules and (rule in rules or "all" in rules):
            return True
    return False


def _check_hot_function(root: Function, index: _Index,
                        findings_out: list[Finding]) -> None:
    reported: set[str] = set()  # rule ids already reported for this root

    def visit(fn: Function, chain: list[Function],
              visited: set[int]) -> None:
        if len(reported) == len(GRAPH_FACT_RULES):
            return
        if id(fn) in visited:
            return
        visited.add(id(fn))
        if not fn.escape:
            for fact in fn.facts:
                rule = GRAPH_FACT_RULES.get(fact.kind)
                if rule is None or rule in reported:
                    continue
                reported.add(rule)
                names = " -> ".join(f.name for f in chain + [fn])
                site = f"{fact.file}:{fact.line}"
                findings_out.append(Finding(
                    rule, root.file, root.line,
                    f"ECRS_HOT '{root.name}' reaches {fact.detail} at "
                    f"{site} (chain: {names}); hoist the work out of the "
                    "hot path or mark an audited cold branch "
                    "ECRS_HOT_ESCAPE", ))
                findings_out[-1].site_file = fact.file  # type: ignore
                findings_out[-1].site_line = fact.line  # type: ignore
        for call in fn.calls:
            for callee in index.definitions(call.callee, call.member):
                if callee.escape:
                    continue
                visit(callee, chain + [fn], visited)

    visit(root, [], set())


def run_checks(modules: list[Module], force_scope: bool = False,
               rules: set[str] | None = None) -> list[Finding]:
    index = _Index(modules)
    allows_by_file = {_norm(m.path): m.allows for m in modules}

    findings: list[Finding] = []
    for root in index.hot_roots():
        _check_hot_function(root, index, findings)

    for mod in modules:
        for fact in mod.file_facts:
            if fact.kind == "des-std-function":
                if not force_scope and not _is_des_header(mod.path):
                    continue
            elif fact.kind == "sentinel-width":
                pass  # sentinel hygiene applies everywhere
            elif not force_scope and not _in_result_scope(mod.path):
                continue
            findings.append(Finding(fact.kind, fact.file, fact.line,
                                    fact.detail))

    kept = []
    for f in findings:
        if _suppressed(f.rule, f.file, f.line, allows_by_file):
            continue
        site_file = getattr(f, "site_file", None)
        if site_file is not None and _suppressed(
                f.rule, site_file, getattr(f, "site_line", 0),
                allows_by_file):
            continue
        if rules and f.rule not in rules:
            continue
        kept.append(f)
    kept.sort(key=lambda f: (f.file, f.line, f.rule))
    return kept
