"""Textual fallback front-end.

Lowers a C++ file to the model IR without libclang: a brace/paren scanner
finds function definitions and their body spans, regexes over the stripped
body text produce facts and call sites, and small symbol tables (type
aliases, unordered-container names, integer declarations) feed the
determinism and sentinel checks. It is deliberately conservative and
deliberately aligned with the libclang front-end's semantics:

  * std:: calls are opaque — only *visible* allocator / lock / blocking
    tokens become facts (the repo's reused-vector push_back is amortized
    zero by design and never flagged by either front-end);
  * placement new (`new (addr) T`) is not an allocation;
  * macro definitions are preprocessor text and contribute nothing (the
    libclang front-end sees their expansions instead, which is why
    ECRS_CHECK's failure path is escape-marked at ecrs::detail::check_failed
    rather than at every call site).

Member declarations from repo-local includes are folded into each module's
symbol tables (one recursive pass over `#include "..."`) so `cert.z` in a
.cc resolves against the unordered_map declared in the header.
"""

from __future__ import annotations

import re
from pathlib import Path

from model import CallSite, Fact, Function, Module

ALLOW_RE = re.compile(
    r"ecrs-analyze:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)

# Head classification -------------------------------------------------------

SCOPE_KEYWORDS = {"namespace", "class", "struct", "union", "enum", "extern"}
NOT_A_CALL = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof", "case",
    "catch", "new", "delete", "throw", "else", "do", "using", "typedef",
    "static_assert", "decltype", "noexcept", "defined", "assert", "template",
    "typename", "operator", "co_await", "co_return", "co_yield", "requires",
    "alignas", "static_cast", "dynamic_cast", "reinterpret_cast",
    "const_cast",
}

NAME_BEFORE_PAREN_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*(?:~?[A-Za-z_]\w*|operator\s*[^\s(]+))"
    r"\s*$")
RECORD_RE = re.compile(r"\b(?:class|struct|union)\s+(?:[A-Z_]+\w*\s+)*"
                       r"([A-Za-z_]\w*)\s*(?::[^:]|$)?")
HOT_RE = re.compile(r"\bECRS_HOT\b")
ESCAPE_RE = re.compile(r"\bECRS_HOT_ESCAPE\b")

# Fact patterns over stripped body text -------------------------------------

ALLOC_RE = re.compile(
    r"\bnew\b(?!\s*\()"  # `new (addr)` is placement, not an allocation
    r"|\b(?:malloc|calloc|realloc|strdup)\s*\("
    r"|\bmake_unique\b|\bmake_shared\b")
LOCK_RE = re.compile(
    r"(?:\.|->)\s*lock\s*\("
    r"|\block_guard\b|\bunique_lock\b|\bscoped_lock\b|\bmutex_lock\b")
THROW_RE = re.compile(r"\bthrow\b")
BLOCK_RE = re.compile(
    r"\bparallel_for\b|(?:\.|->)\s*(?:wait|wait_for|wait_until|join)\s*\("
    r"|\bsleep_for\b|\bsleep_until\b")
NONDET_RE = re.compile(
    r"\bstd\s*::\s*(?:rand|srand|time)\s*\("
    r"|(?<![\w.>:])(?:rand|srand|time)\s*\("
    r"|\brandom_device\b")
CALL_RE = re.compile(r"([A-Za-z_]\w*)\s*\(")
FLOAT_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|multimap|set|multiset)\s*<\s*"
    r"(?:const\s+)?(?:float|double|long\s+double)\b")
STD_FUNCTION_RE = re.compile(r"\bstd\s*::\s*function\s*<")
USING_CALLBACK_RE = re.compile(r"\busing\s+callback\s*=")

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+([A-Za-z_]\w*)\s*=\s*(?:std\s*::\s*)?"
    r"unordered_(?:map|set|multimap|multiset)\s*<")
FOR_RE = re.compile(r"\bfor\s*\(")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")

USING_ALIAS_RE = re.compile(r"\busing\s+([A-Za-z_]\w*)\s*=\s*([^;]+);")
INT_DECL_RE = re.compile(
    r"\b((?:std\s*::\s*)?(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t)"
    r"|unsigned(?:\s+(?:long\s+long|long|int|short|char))?"
    r"|long\s+long|long|short|int)"
    r"\s+(?:const\s+)?[&*]?\s*([A-Za-z_]\w*)\b")
VECTOR_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:vector|array|span)\s*<\s*([A-Za-z_][\w:\s]*?)\s*[,>]"
    r"[^;({]*?\b([A-Za-z_]\w*)\s*[;={(]")
SENTINEL_CMP_RE = re.compile(
    r"([A-Za-z_][\w.\[\]()>:-]*?)\s*(?:==|!=)\s*\b(kNoIndex|kNoSeller)\b"
    r"|\b(kNoIndex|kNoSeller)\b\s*(?:==|!=)\s*([A-Za-z_][\w.\[\]()>:-]*)")
SENTINEL_CAST_RE = re.compile(
    r"static_cast\s*<\s*([^>]+?)\s*>\s*\([^()]*\)\s*(?:==|!=)\s*"
    r"\b(?:kNoIndex|kNoSeller)\b"
    r"|\b(?:kNoIndex|kNoSeller)\b\s*(?:==|!=)\s*"
    r"static_cast\s*<\s*([^>]+?)\s*>")

# Declared types known to be exactly the sentinel's width and signedness.
U32_OK = {
    "std::uint32_t", "uint32_t", "unsigned", "unsigned int", "auto",
}


def _normalize_type(t: str) -> str:
    return re.sub(r"\s+", " ", t.replace("std ::", "std::").strip())


def strip_comments_and_strings(text: str) -> str:
    """Blank comments, string/char literals and preprocessor directives
    (including continuation lines), preserving newlines so line numbers
    survive."""
    out = []
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if at_line_start and ch in " \t":
            out.append(ch)
            i += 1
            continue
        if at_line_start and ch == "#":
            # Preprocessor directive: blank it out, honouring backslash
            # continuations, so #define bodies never look like code.
            while i < n:
                if text[i] == "\n":
                    if out and out[-1] == "\\":
                        out.pop()  # unreachable; kept for symmetry
                    if i > 0 and text[i - 1] == "\\":
                        out.append("\n")
                        i += 1
                        continue
                    break
                i += 1
            at_line_start = True
            continue
        at_line_start = False
        if ch == "\n":
            out.append("\n")
            at_line_start = True
            i += 1
        elif ch == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif ch in "\"'":
            quote = ch
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                if i < n and text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
            out.append(quote * 2)  # keep '' so `for (x : "..")` stays sane
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def collect_allows(raw: str) -> dict[int, set[str]]:
    allows: dict[int, set[str]] = {}
    for num, line in enumerate(raw.split("\n"), start=1):
        m = ALLOW_RE.search(line)
        if m:
            allows[num] = {r.strip() for r in m.group(1).split(",")}
    return allows


def _first_toplevel_paren(head: str) -> int:
    depth = 0
    angle = 0
    for idx, ch in enumerate(head):
        if ch == "<":
            angle += 1
        elif ch == ">":
            angle = max(0, angle - 1)
        elif ch == "(":
            if depth == 0 and angle == 0:
                return idx
            depth += 1
        elif ch == ")":
            depth = max(0, depth - 1)
    return -1


def _classify_head(head: str, line: int, path: str) -> Function | None:
    toks = head.split()
    if not toks or toks[0] in SCOPE_KEYWORDS:
        return None
    paren = _first_toplevel_paren(head)
    if paren < 0:
        return None
    if "=" in head[:paren] and "operator" not in head[:paren]:
        return None  # `auto f = [](...)` / initializer, not a definition
    m = NAME_BEFORE_PAREN_RE.search(head[:paren])
    if not m:
        return None
    name = m.group(1)
    simple = name.split("::")[-1].strip()
    if simple in NOT_A_CALL or not simple:
        return None
    return Function(
        name=name,
        key=simple.lstrip("~"),
        file=path,
        line=line,
        hot=bool(HOT_RE.search(head)),
        escape=bool(ESCAPE_RE.search(head)),
    )


def _qualify(fn: Function, records: list[str]) -> None:
    """Give member functions a `Record::name` key (see model.Function)."""
    parts = fn.name.split("::")
    if len(parts) >= 2:
        fn.key = parts[-2] + "::" + parts[-1].strip().lstrip("~")
        fn.member = True
    elif records:
        fn.key = records[-1] + "::" + fn.key
        fn.member = True


def _record_name(head: str) -> str | None:
    """Name of the class/struct/union a `{` opens, None for plain scopes.
    Annotation macros between the keyword and the name (e.g.
    `class ECRS_CAPABILITY("mutex") mutex`) are skipped."""
    cleaned = re.sub(r"\bECRS_\w+\s*(?:\([^)]*\))?", " ", head)
    toks = cleaned.split()
    for pos, tok in enumerate(toks):
        if tok in ("class", "struct", "union") and pos + 1 < len(toks):
            nxt = toks[pos + 1]
            m = re.match(r"[A-Za-z_]\w*$", nxt.rstrip(":"))
            if m and nxt.rstrip(":") not in ("final",):
                return nxt.rstrip(":")
    return None


def _matching_angle(s: str, start: int) -> int:
    """Index just past the `>` matching the `<` at s[start]; -1 if none."""
    depth = 0
    i = start
    while i < len(s):
        ch = s[i]
        if ch == "<":
            depth += 1
        elif ch == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif ch in ";{}":
            return -1
        i += 1
    return -1


def _unordered_names(stripped: str) -> set[str]:
    names: set[str] = set()
    aliases = set(UNORDERED_ALIAS_RE.findall(stripped))
    for m in UNORDERED_DECL_RE.finditer(stripped):
        end = _matching_angle(stripped, stripped.index("<", m.start()))
        if end < 0:
            continue
        after = stripped[end:end + 120]
        # `[;={]` ends a variable/member declaration, `[),]` a parameter;
        # a name directly followed by `(` is a function returning a map.
        dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)\s*(?=[;={(),])", after)
        if dm and not after[len(dm.group(0)):].lstrip().startswith("("):
            names.add(dm.group(1))
        elif dm:
            pass  # function returning a map — not a named container
    for alias in aliases:
        for dm in re.finditer(
                r"\b" + re.escape(alias) + r"\s+([A-Za-z_]\w*)\s*[;={]",
                stripped):
            names.add(dm.group(1))
    return names


def _int_decls(stripped: str,
               aliases: dict[str, str]) -> dict[str, str]:
    """name -> normalized declared integer type (aliases resolved)."""
    table: dict[str, str] = {}
    for m in INT_DECL_RE.finditer(stripped):
        table[m.group(2)] = _normalize_type(m.group(1))
    for alias, target in aliases.items():
        resolved = _normalize_type(target)
        if not re.fullmatch(
                r"(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|ptrdiff_t)"
                r"|unsigned(?: int)?|int|long(?: long)?|short", resolved):
            continue
        for dm in re.finditer(
                r"\b" + re.escape(alias) + r"\s+(?:const\s+)?[&*]?\s*"
                r"([A-Za-z_]\w*)\b", stripped):
            table[dm.group(1)] = resolved
    for m in VECTOR_DECL_RE.finditer(stripped):
        elem = _normalize_type(m.group(1))
        elem = _normalize_type(aliases.get(elem, elem))
        if re.fullmatch(r"(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t"
                        r"|unsigned(?: int)?|int|long(?: long)?|short", elem):
            table[m.group(2)] = elem
    return table


def _is_u32(type_name: str, aliases: dict[str, str]) -> bool:
    t = _normalize_type(type_name)
    t = _normalize_type(aliases.get(t, t))
    return t in U32_OK


def _operand_base(expr: str) -> str | None:
    """Last identifier component of a comparison operand, or None when the
    operand is too complex to attribute (then we stay silent)."""
    expr = expr.strip()
    expr = re.sub(r"\[[^\]]*\]$", "", expr)  # prices[i] -> prices
    m = re.search(r"([A-Za-z_]\w*)$", expr)
    if not m:
        return None
    name = m.group(1)
    if name in ("kNoIndex", "kNoSeller"):
        return None
    return name


class _IncludeCache:
    """Recursively collected symbol tables from repo-local includes."""

    def __init__(self, root: Path):
        self.root = root
        self._memo: dict[Path, tuple[set[str], dict[str, str]]] = {}

    def tables_for(self, path: Path,
                   seen: set[Path] | None = None
                   ) -> tuple[set[str], dict[str, str]]:
        seen = seen if seen is not None else set()
        path = path.resolve()
        if path in self._memo:
            return self._memo[path]
        if path in seen or not path.is_file():
            return set(), {}
        seen.add(path)
        try:
            raw = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return set(), {}
        stripped_no_pp = strip_comments_and_strings(raw)
        aliases = {a: t for a, t in USING_ALIAS_RE.findall(stripped_no_pp)}
        unordered = _unordered_names(stripped_no_pp)
        for inc in INCLUDE_RE.findall(raw):
            for base in (self.root / "src", path.parent):
                cand = base / inc
                if cand.is_file():
                    u2, a2 = self.tables_for(cand, seen)
                    unordered |= u2
                    for k, v in a2.items():
                        aliases.setdefault(k, v)
                    break
        self._memo[path] = (unordered, aliases)
        return self._memo[path]


def parse_file(path: Path, rel: str, root: Path,
               include_cache: _IncludeCache | None = None) -> Module:
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    module = Module(path=rel, allows=collect_allows(raw))

    functions, decls = _parse_functions(stripped, rel)
    module.functions = functions
    # Attributed declarations (no body) still matter: an ECRS_HOT_ESCAPE on
    # a header prototype must stick to the out-of-line definition.
    module.functions.extend(decls)

    unordered = _unordered_names(stripped)
    aliases = {a: t for a, t in USING_ALIAS_RE.findall(stripped)}
    if include_cache is not None:
        u2, a2 = include_cache.tables_for(path)
        unordered |= u2
        for k, v in a2.items():
            aliases.setdefault(k, v)

    _file_facts(stripped, rel, module, unordered, aliases)
    return module


def _parse_functions(stripped: str,
                     rel: str) -> tuple[list[Function], list[Function]]:
    functions: list[Function] = []
    decls: list[Function] = []
    stack: list[tuple[str, Function | None, int, int]] = []
    records: list[str] = []  # enclosing class/struct/union names
    head: list[str] = []
    head_line = 1
    head_started = False
    line = 1
    paren = 0
    in_func_depth = 0  # count of "func" entries on the stack

    i, n = 0, len(stripped)
    while i < n:
        ch = stripped[i]
        if ch == "\n":
            line += 1
        if ch == "(":
            paren += 1
        elif ch == ")":
            paren = max(0, paren - 1)
        if paren == 0 and ch in ";{}":
            head_text = "".join(head)
            head = []
            if ch == "{":
                if in_func_depth:
                    stack.append(("block", None, 0, 0))
                else:
                    fn = _classify_head(head_text, head_line, rel)
                    if fn is not None:
                        _qualify(fn, records)
                        stack.append(("func", fn, i + 1, line))
                        in_func_depth += 1
                    else:
                        rec = _record_name(head_text)
                        if rec is not None:
                            records.append(rec)
                            stack.append(("record", None, 0, 0))
                        else:
                            stack.append(("plain", None, 0, 0))
            elif ch == "}":
                if stack:
                    kind, fn, body_start, body_line = stack.pop()
                    if kind == "func" and fn is not None:
                        in_func_depth -= 1
                        _scan_body(fn, stripped[body_start:i], body_line)
                        functions.append(fn)
                    elif kind == "record" and records:
                        records.pop()
            else:  # ';'
                if not in_func_depth and (
                        HOT_RE.search(head_text)
                        or ESCAPE_RE.search(head_text)):
                    fn = _classify_head(head_text, head_line, rel)
                    if fn is not None:
                        _qualify(fn, records)
                        fn.is_definition = False
                        decls.append(fn)
            head_line = line
            head_started = False
        else:
            if not head_started and ch not in " \t\n":
                head_line = line
                head_started = True
            head.append(ch)
        i += 1
    return functions, decls


def _scan_body(fn: Function, body: str, start_line: int) -> None:
    for off, text in enumerate(body.split("\n")):
        num = start_line + off
        if ALLOC_RE.search(text):
            fn.facts.append(Fact("alloc", fn.file, num,
                                 "allocator call (new / malloc / "
                                 "make_unique / make_shared)"))
        if LOCK_RE.search(text):
            fn.facts.append(Fact("lock", fn.file, num, "mutex acquisition"))
        if THROW_RE.search(text):
            fn.facts.append(Fact("throw", fn.file, num, "throw expression"))
        if BLOCK_RE.search(text):
            fn.facts.append(Fact("block", fn.file, num,
                                 "blocking call (parallel_for / wait / "
                                 "join / sleep)"))
        for m in CALL_RE.finditer(text):
            callee = m.group(1)
            if callee in NOT_A_CALL:
                continue
            before = text[:m.start()].rstrip()
            member = before.endswith(".") or before.endswith("->")
            fn.calls.append(CallSite(callee, fn.file, num, member))


def _file_facts(stripped: str, rel: str, module: Module,
                unordered: set[str], aliases: dict[str, str]) -> None:
    int_types = _int_decls(stripped, aliases)
    lines = stripped.split("\n")
    for num, text in enumerate(lines, start=1):
        if NONDET_RE.search(text):
            module.file_facts.append(Fact(
                "nondet-source", rel, num,
                "rand/time/random_device — route randomness through "
                "ecrs::rng so runs replay from one seed"))
        if FLOAT_KEY_RE.search(text):
            module.file_facts.append(Fact(
                "float-key", rel, num,
                "container keyed by float/double — float keys make "
                "membership depend on rounding"))
        if (STD_FUNCTION_RE.search(text)
                and not USING_CALLBACK_RE.search(text)):
            module.file_facts.append(Fact(
                "des-std-function", rel, num,
                "std::function in a DES header — use des/callback.h "
                "basic_callback (inline storage)"))
        for m in SENTINEL_CMP_RE.finditer(text):
            operand = m.group(1) or m.group(4)
            base = _operand_base(operand or "")
            if base is None:
                continue
            declared = int_types.get(base)
            if declared is None or _is_u32(declared, aliases):
                continue
            module.file_facts.append(Fact(
                "sentinel-width", rel, num,
                f"'{base}' is declared {declared}; comparing it against a "
                "std::uint32_t sentinel truncates or sign-extends"))
        for m in SENTINEL_CAST_RE.finditer(text):
            cast_type = m.group(1) or m.group(2)
            if cast_type and not _is_u32(cast_type, aliases):
                module.file_facts.append(Fact(
                    "sentinel-width", rel, num,
                    f"sentinel compared through static_cast<{cast_type}>; "
                    "compare at std::uint32_t width instead"))
    # Range-for over an unordered container (declared here or in a repo
    # header this file includes).
    for m in FOR_RE.finditer(stripped):
        open_paren = stripped.index("(", m.start())
        depth = 0
        j = open_paren
        while j < len(stripped):
            if stripped[j] == "(":
                depth += 1
            elif stripped[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        inner = stripped[open_paren + 1:j]
        colon = _toplevel_colon(inner)
        if colon < 0:
            continue
        rhs = inner[colon + 1:]
        hits = [t for t in IDENT_RE.findall(rhs) if t in unordered]
        if hits:
            num = stripped.count("\n", 0, m.start()) + 1
            module.file_facts.append(Fact(
                "unordered-iter", rel, num,
                f"range-for over unordered container '{hits[0]}' — copy to "
                "a sorted vector first (or justify order-independence with "
                "an allow comment)"))


def _toplevel_colon(s: str) -> int:
    depth = 0
    i = 0
    while i < len(s):
        ch = s[i]
        if ch in "(<[":
            depth += 1
        elif ch in ")>]":
            depth = max(0, depth - 1)
        elif ch == ":" and depth == 0:
            if i + 1 < len(s) and s[i + 1] == ":":
                i += 2
                continue
            if i > 0 and s[i - 1] == ":":
                i += 1
                continue
            return i
        i += 1
    return -1


def load_modules(paths: list[Path], root: Path) -> list[Module]:
    cache = _IncludeCache(root)
    modules = []
    for path in paths:
        rel = str(path.relative_to(root)) if path.is_relative_to(root) \
            else str(path)
        modules.append(parse_file(path, rel, root, cache))
    return modules
