"""libclang front-end (preferred when `clang.cindex` is importable).

Parses each TU from compile_commands.json and lowers real AST nodes to the
same IR the textual front-end produces:

  * ECRS_HOT / ECRS_HOT_ESCAPE arrive as `annotate("ecrs::hot")` /
    `annotate("ecrs::hot_escape")` attributes (annotations.h expands the
    macros to __attribute__((annotate(...))) under Clang);
  * CXX_NEW_EXPR (minus placement forms), malloc-family calls and
    make_unique/make_shared become `alloc` facts;
  * mutex lock calls and RAII lock construction become `lock` facts;
  * CXX_THROW_EXPR becomes `throw`; parallel_for / wait / join / sleep
    calls become `block`;
  * CXX_FOR_RANGE_STMT whose range type names an unordered container
    becomes `unordered-iter`; rand/time/random_device calls become
    `nondet-source`; float-keyed associative declarations become
    `float-key`; ==/!= against kNoIndex/kNoSeller where the other operand's
    canonical type is not `unsigned int` becomes `sentinel-width`.

Semantics intentionally match textfe.py (std:: is opaque except for the
explicit token sets above) so a repo that scans clean under one front-end
scans clean under the other.
"""

from __future__ import annotations

import json
import re
import shlex
from pathlib import Path

from model import CallSite, Fact, Function, Module
from textfe import collect_allows

try:
    from clang import cindex
    _HAVE_CINDEX = True
except Exception:  # pragma: no cover - exercised only without libclang
    cindex = None
    _HAVE_CINDEX = False


def available() -> bool:
    if not _HAVE_CINDEX:
        return False
    try:
        cindex.Index.create()
        return True
    except Exception:
        return False


ALLOC_CALLS = {"malloc", "calloc", "realloc", "strdup", "make_unique",
               "make_shared", "operator new", "operator new[]"}
LOCK_CALLS = {"lock"}
LOCK_TYPES = ("lock_guard", "unique_lock", "scoped_lock", "mutex_lock")
BLOCK_CALLS = {"parallel_for", "wait", "wait_for", "wait_until", "join",
               "sleep_for", "sleep_until"}
NONDET_CALLS = {"rand", "srand", "time"}
UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b")
FLOAT_KEY_RE = re.compile(
    r"\b(?:unordered_)?(?:map|multimap|set|multiset)\s*<\s*"
    r"(?:const\s+)?(?:float|double|long\s+double)\b")
SENTINELS = {"kNoIndex", "kNoSeller"}
U32_CANON = {"unsigned int", "const unsigned int", "uint32_t",
             "std::uint32_t"}


def _annotations(cursor) -> set[str]:
    out = set()
    for child in cursor.get_children():
        if child.kind == cindex.CursorKind.ANNOTATE_ATTR:
            out.add(child.spelling)
    return out


def _is_placement_new(cursor) -> bool:
    toks = [t.spelling for t in cursor.get_tokens()][:4]
    for i, tok in enumerate(toks):
        if tok == "new":
            return i + 1 < len(toks) and toks[i + 1] == "("
    return False


def _callee_name(cursor) -> str:
    ref = cursor.referenced
    if ref is not None and ref.spelling:
        return ref.spelling
    return cursor.spelling or ""


def _callee_class(cursor) -> str:
    ref = cursor.referenced
    if ref is not None and ref.semantic_parent is not None:
        return ref.semantic_parent.spelling or ""
    return ""


class _ModuleSet:
    """One Module per distinct repo file, shared across TUs. Headers are
    lowered once per including TU; functions and facts are deduplicated by
    location so a header-declared inline function reports once, and allow
    comments are honoured in the file that actually carries the finding."""

    def __init__(self, root: Path):
        self.root = root
        self.by_rel: dict[str, Module] = {}
        self._seen_functions: set[tuple[str, int, str]] = set()
        self._seen_facts: set[tuple[str, str, int]] = set()

    def module_for(self, rel: str) -> Module:
        mod = self.by_rel.get(rel)
        if mod is None:
            try:
                raw = (self.root / rel).read_text(encoding="utf-8",
                                                  errors="replace")
            except OSError:
                raw = ""
            mod = Module(path=rel, allows=collect_allows(raw))
            self.by_rel[rel] = mod
        return mod

    def add_function(self, fn: Function) -> bool:
        key = (fn.file, fn.line, fn.name)
        if key in self._seen_functions:
            return False
        self._seen_functions.add(key)
        self.module_for(fn.file).functions.append(fn)
        return True

    def add_file_fact(self, fact: Fact) -> None:
        key = (fact.kind, fact.file, fact.line)
        if key in self._seen_facts:
            return
        self._seen_facts.add(key)
        self.module_for(fact.file).file_facts.append(fact)

    def modules(self) -> list[Module]:
        return sorted(self.by_rel.values(), key=lambda m: m.path)


class _TuLowerer:
    def __init__(self, modules: _ModuleSet, root: Path):
        self.modules = modules
        self.root = root

    def lower(self, tu) -> None:
        self._walk_top(tu.cursor)

    def _in_tree(self, cursor) -> bool:
        loc = cursor.location
        if loc is None or loc.file is None:
            return False
        try:
            return Path(loc.file.name).resolve().is_relative_to(self.root)
        except (OSError, ValueError):
            return False

    def _relpath(self, cursor) -> str:
        p = Path(cursor.location.file.name).resolve()
        try:
            return str(p.relative_to(self.root))
        except ValueError:
            return str(p)

    def _walk_top(self, cursor) -> None:
        fn_kinds = (cindex.CursorKind.FUNCTION_DECL,
                    cindex.CursorKind.CXX_METHOD,
                    cindex.CursorKind.CONSTRUCTOR,
                    cindex.CursorKind.DESTRUCTOR,
                    cindex.CursorKind.FUNCTION_TEMPLATE)
        for child in cursor.walk_preorder():
            if not self._in_tree(child):
                continue
            if child.kind in fn_kinds:
                self._lower_function(child)
            elif child.kind in (cindex.CursorKind.VAR_DECL,
                                cindex.CursorKind.FIELD_DECL):
                self._check_decl(child)

    def _check_decl(self, cursor) -> None:
        type_text = cursor.type.spelling if cursor.type else ""
        if FLOAT_KEY_RE.search(type_text):
            self.modules.add_file_fact(Fact(
                "float-key", self._relpath(cursor), cursor.location.line,
                f"'{cursor.spelling}' is keyed by a floating-point type — "
                "float keys make membership depend on rounding"))

    def _lower_function(self, cursor) -> None:
        annots = _annotations(cursor)
        hot = "ecrs::hot" in annots
        escape = "ecrs::hot_escape" in annots
        is_def = cursor.is_definition()
        if not is_def and not (hot or escape):
            return
        fn = Function(
            name=cursor.spelling,
            key=cursor.spelling,
            file=self._relpath(cursor),
            line=cursor.location.line,
            hot=hot,
            escape=escape,
            is_definition=is_def,
        )
        if not self.modules.add_function(fn):
            return  # header function already lowered via another TU
        if is_def:
            self._lower_body(cursor, fn)

    def _lower_body(self, cursor, fn: Function) -> None:
        for node in cursor.walk_preorder():
            if node == cursor:
                continue
            loc_file = fn.file
            line = node.location.line if node.location else fn.line
            kind = node.kind
            if kind == cindex.CursorKind.CXX_NEW_EXPR:
                if not _is_placement_new(node):
                    fn.facts.append(Fact("alloc", loc_file, line,
                                         "allocator call (new)"))
            elif kind == cindex.CursorKind.CXX_THROW_EXPR:
                fn.facts.append(Fact("throw", loc_file, line,
                                     "throw expression"))
            elif kind == cindex.CursorKind.CALL_EXPR:
                self._lower_call(node, fn, loc_file, line)
            elif kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                self._lower_range_for(node, loc_file, line)
            elif kind == cindex.CursorKind.VAR_DECL:
                type_text = node.type.spelling if node.type else ""
                if any(t in type_text for t in LOCK_TYPES):
                    fn.facts.append(Fact("lock", loc_file, line,
                                         "mutex acquisition (RAII lock)"))
                self._check_decl(node)
            elif kind == cindex.CursorKind.BINARY_OPERATOR:
                self._lower_comparison(node, loc_file, line)

    def _lower_call(self, node, fn: Function, loc_file: str,
                    line: int) -> None:
        name = _callee_name(node)
        if not name:
            return
        if name in ALLOC_CALLS:
            fn.facts.append(Fact("alloc", loc_file, line,
                                 f"allocator call ({name})"))
            return
        if name in LOCK_CALLS and _callee_class(node) in (
                "mutex", "timed_mutex", "recursive_mutex", "shared_mutex"):
            fn.facts.append(Fact("lock", loc_file, line,
                                 "mutex acquisition"))
            return
        if name in BLOCK_CALLS:
            fn.facts.append(Fact("block", loc_file, line,
                                 f"blocking call ({name})"))
            return
        if name in NONDET_CALLS or name == "random_device":
            self.modules.add_file_fact(Fact(
                "nondet-source", loc_file, line,
                f"{name} — route randomness through ecrs::rng so runs "
                "replay from one seed"))
        fn.calls.append(CallSite(name, loc_file, line))

    def _lower_range_for(self, node, loc_file: str, line: int) -> None:
        for child in node.get_children():
            type_text = child.type.spelling if child.type else ""
            if UNORDERED_RE.search(type_text):
                self.modules.add_file_fact(Fact(
                    "unordered-iter", loc_file, line,
                    "range-for over an unordered container — copy to a "
                    "sorted vector first (or justify order-independence "
                    "with an allow comment)"))
                return

    def _lower_comparison(self, node, loc_file: str, line: int) -> None:
        toks = [t.spelling for t in node.get_tokens()]
        if "==" not in toks and "!=" not in toks:
            return
        if not (SENTINELS & set(toks)):
            return
        children = list(node.get_children())
        if len(children) != 2:
            return
        refs = []
        for child in children:
            text = " ".join(t.spelling for t in child.get_tokens())
            is_sentinel = any(s in text for s in SENTINELS)
            canon = child.type.get_canonical().spelling if child.type else ""
            refs.append((is_sentinel, canon))
        sentinel_sides = [r for r in refs if r[0]]
        other_sides = [r for r in refs if not r[0]]
        if not sentinel_sides or not other_sides:
            return
        canon = other_sides[0][1]
        if canon and canon not in U32_CANON:
            self.modules.add_file_fact(Fact(
                "sentinel-width", loc_file, line,
                f"sentinel compared against '{canon}' — compare at "
                "std::uint32_t width instead"))


def _tu_args(entry: dict) -> list[str]:
    if "arguments" in entry:
        args = list(entry["arguments"])
    else:
        args = shlex.split(entry.get("command", ""))
    args = args[1:]  # drop the compiler
    cleaned = []
    skip = 0
    for a in args:
        if skip:
            skip -= 1
            continue
        if a in ("-c", "-o"):
            skip = 1 if a == "-o" else 0
            continue
        if a.endswith((".cc", ".cpp", ".o")):
            continue
        cleaned.append(a)
    return cleaned


def load_modules(compdb_path: Path, root: Path,
                 paths: list[Path] | None = None) -> list[Module]:
    entries = json.loads(compdb_path.read_text(encoding="utf-8"))
    index = cindex.Index.create()
    wanted = {p.resolve() for p in paths} if paths else None
    modules = _ModuleSet(root)
    seen: set[Path] = set()
    for entry in entries:
        src = Path(entry["file"])
        if not src.is_absolute():
            src = Path(entry.get("directory", ".")) / src
        src = src.resolve()
        if src in seen or not src.is_relative_to(root):
            continue
        if wanted is not None and not any(
                src == w or (w.is_dir() and src.is_relative_to(w))
                for w in wanted):
            continue
        seen.add(src)
        tu = index.parse(str(src), args=_tu_args(entry))
        _TuLowerer(modules, root).lower(tu)
    return modules.modules()
