"""ecrs-analyze: call-graph static analysis for the ECRS C++ tree.

Run as a directory (`python3 tools/ecrs_analyze --root .`) or as a module.
See docs/ANALYSIS.md for the rule catalogue and escape-hatch policy.
"""
