"""CLI driver: front-end selection, file collection, reporting.

Usage:
  python3 tools/ecrs_analyze --root . [paths...]
      [--frontend auto|clang|text] [--compdb build/compile_commands.json]
      [--rules r1,r2] [--force-scope] [--list-rules]

Front-end selection (`auto`, the default): the libclang front-end when
`clang.cindex` imports AND the compilation database exists; the built-in
textual front-end otherwise (a notice goes to stderr so CI logs show which
one ran). `--frontend clang` hard-fails with an actionable message when
either prerequisite is missing — tools/verify.sh relies on that for its
skip-vs-fail gating.

Exit status: 0 clean, 1 findings, 2 usage/infrastructure error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from model import ALL_RULES
import checks
import clangfe
import textfe

CXX_SUFFIXES = {".h", ".cc", ".cpp", ".hpp"}


def _collect_files(root: Path, paths: list[str]) -> list[Path]:
    out: list[Path] = []
    for spec in paths or ["src"]:
        p = Path(spec)
        if not p.is_absolute():
            p = root / spec
        if p.is_dir():
            out.extend(sorted(
                f for f in p.rglob("*")
                if f.suffix in CXX_SUFFIXES and f.is_file()))
        elif p.is_file():
            out.append(p)
        else:
            print(f"ecrs-analyze: no such path: {spec}", file=sys.stderr)
            return []
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ecrs-analyze",
        description="call-graph static analysis for the ECRS C++ tree")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: src/)")
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--frontend", choices=("auto", "clang", "text"),
                        default="auto")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--rules", default="",
                        help="comma-separated subset of rules to report")
    parser.add_argument("--force-scope", action="store_true",
                        help="treat every analyzed file as result-affecting "
                             "(corpus tests)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        width = max(len(r) for r in ALL_RULES)
        for rule, text in sorted(ALL_RULES.items()):
            print(f"{rule:<{width}}  {text}")
        return 0

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"ecrs-analyze: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2

    compdb = Path(args.compdb) if args.compdb \
        else root / "build" / "compile_commands.json"

    frontend = args.frontend
    if frontend == "auto":
        if clangfe.available() and compdb.is_file():
            frontend = "clang"
        else:
            if clangfe.available():
                print(f"ecrs-analyze: {compdb} not found — configure with "
                      "CMAKE_EXPORT_COMPILE_COMMANDS=ON (every CMake preset "
                      "sets it); falling back to the textual front-end",
                      file=sys.stderr)
            frontend = "text"
    elif frontend == "clang":
        if not clangfe.available():
            print("ecrs-analyze: --frontend clang requested but "
                  "clang.cindex / libclang is unavailable (pip install "
                  "libclang, or use --frontend text)", file=sys.stderr)
            return 2
        if not compdb.is_file():
            print(f"ecrs-analyze: --frontend clang requested but {compdb} "
                  "does not exist — configure the build with "
                  "CMAKE_EXPORT_COMPILE_COMMANDS=ON (every CMake preset "
                  "sets it) or pass --compdb", file=sys.stderr)
            return 2

    files = _collect_files(root, args.paths)
    if not files:
        return 2

    if frontend == "clang":
        modules = clangfe.load_modules(compdb, root, files)
        # Headers only reachable through TUs outside the path filter (or
        # header-only corpus inputs) still need the textual pass.
        covered = {m.path for m in modules}
        leftovers = [f for f in files
                     if str(f.relative_to(root)) not in covered
                     and f.suffix in (".h", ".hpp")]
        if leftovers:
            modules.extend(textfe.load_modules(leftovers, root))
    else:
        modules = textfe.load_modules(files, root)

    wanted = {r.strip() for r in args.rules.split(",") if r.strip()} or None
    if wanted:
        unknown = wanted - set(ALL_RULES)
        if unknown:
            print(f"ecrs-analyze: unknown rule(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2

    findings = checks.run_checks(modules, force_scope=args.force_scope,
                                 rules=wanted)
    for finding in findings:
        print(finding)

    n_funcs = sum(len(m.functions) for m in modules)
    n_hot = sum(1 for m in modules for f in m.functions if f.hot)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"ecrs-analyze[{frontend}]: {len(modules)} files, "
          f"{n_funcs} functions ({n_hot} hot), {status}")
    return 0 if not findings else 1
