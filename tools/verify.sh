#!/usr/bin/env bash
# Tier-1 verification: four stages, mirrored one-to-one by the CI jobs in
# .github/workflows/ci.yml (docs/ANALYSIS.md describes the matrix):
#
#   1. plain     — RelWithDebInfo build + full ctest (what CI gates on)
#   2. asan      — the same suite under AddressSanitizer + UBSan, with
#                  warnings-as-errors and the mechanism self-audit on
#   3. tsan      — ThreadSanitizer build; runs the concurrency stress
#                  harness (pool sizes 1, 2, hardware_concurrency) plus the
#                  mechanism/property suites that exercise the parallel
#                  payment fan-out
#   4. lint      — ecrs-lint + clang-format check (format check is skipped
#                  with a notice when clang-format is not installed)
#
#   tools/verify.sh            # all four stages
#   tools/verify.sh --fast     # stage 1 only
#   tools/verify.sh --format   # format check only
#   tools/verify.sh --lint     # stage 4 only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

format_check() {
  echo "== format check (clang-format, check-only) =="
  local clang_format
  clang_format="$(command -v clang-format || true)"
  if [[ -z "${clang_format}" ]]; then
    echo "clang-format not installed; skipping (ecrs-lint still enforces the"
    echo "whitespace baseline — see docs/ANALYSIS.md)"
    return 0
  fi
  # Check-only: a diff fails the stage but nothing is rewritten.
  find src tests tools bench examples \
    \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) -print0 |
    xargs -0 "${clang_format}" --dry-run -Werror
  echo "format: clean"
}

lint_stage() {
  echo "== ecrs-lint =="
  python3 tools/ecrs_lint.py --root .
  format_check
}

case "${1:-}" in
  --format)
    format_check
    exit 0
    ;;
  --lint)
    lint_stage
    exit 0
    ;;
esac

echo "== stage 1/4: plain build + ctest =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== stage 2/4: ASan+UBSan build + ctest =="
cmake --preset sanitize >/dev/null
cmake --build --preset sanitize -j "$JOBS"
ctest --preset sanitize -j "$JOBS"

echo "== stage 3/4: TSan build + concurrency suite =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"
# The stress harness iterates pool sizes {1, 2, hardware_concurrency}
# internally (tests/concurrency_stress_test.cc); the companion suites cover
# the parallel SSAM payment fan-out end to end. halt_on_error: any report
# fails the stage.
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}" \
  ctest --preset tsan -j "$JOBS" \
    -R 'concurrency_stress_test|common_test|ssam_test|msoa_test|properties_test|audit_test'

echo "== stage 4/4: lint + format =="
lint_stage

echo "verify: all four stages green"
