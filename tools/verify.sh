#!/usr/bin/env bash
# Tier-1 verification: the plain build + test suite (what CI gates on),
# followed by the same suite under AddressSanitizer + UBSan.
#
#   tools/verify.sh            # both passes
#   tools/verify.sh --fast     # plain pass only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== plain build + ctest =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== ASan+UBSan build + ctest =="
cmake --preset sanitize >/dev/null
cmake --build --preset sanitize -j "$JOBS"
ctest --preset sanitize -j "$JOBS"

echo "verify: all passes green"
