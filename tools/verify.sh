#!/usr/bin/env bash
# Tier-1 verification: five stages, mirrored one-to-one by the CI jobs in
# .github/workflows/ci.yml (docs/ANALYSIS.md describes the matrix):
#
#   1. plain     — RelWithDebInfo build + full ctest (what CI gates on)
#   2. analyze   — tools/ecrs_analyze over src/ against the stage-1
#                  compilation database, plus the diagnostic corpus and the
#                  lint-rule unit tests
#   3. asan      — the same suite under AddressSanitizer + UBSan, with
#                  warnings-as-errors and the mechanism self-audit on
#   4. tsan      — ThreadSanitizer build; runs the concurrency stress
#                  harness (pool sizes 1, 2, hardware_concurrency) plus the
#                  mechanism/property suites that exercise the parallel
#                  payment fan-out
#   5. lint      — ecrs-lint + clang-format check (format check is skipped
#                  with a notice when clang-format is not installed)
#
#   tools/verify.sh            # all five stages
#   tools/verify.sh --fast     # stage 1 only
#   tools/verify.sh --analyze  # stage 2 only (needs a configured build/)
#   tools/verify.sh --format   # format check only
#   tools/verify.sh --lint     # stage 5 only
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="$(nproc 2>/dev/null || echo 2)"

format_check() {
  echo "== format check (clang-format, check-only) =="
  local clang_format
  clang_format="$(command -v clang-format || true)"
  if [[ -z "${clang_format}" ]]; then
    echo "clang-format not installed; skipping (ecrs-lint still enforces the"
    echo "whitespace baseline — see docs/ANALYSIS.md)"
    return 0
  fi
  # Check-only: a diff fails the stage but nothing is rewritten.
  find src tests tools bench examples \
    \( -name '*.h' -o -name '*.cc' -o -name '*.cpp' \) -print0 |
    xargs -0 "${clang_format}" --dry-run -Werror
  echo "format: clean"
}

lint_stage() {
  echo "== ecrs-lint =="
  python3 tools/ecrs_lint.py --root .
  python3 tools/test_ecrs_lint.py
  format_check
}

analyze_stage() {
  echo "== ecrs-analyze (call-graph purity / determinism / sentinels) =="
  if [[ ! -f build/compile_commands.json ]]; then
    echo "error: build/compile_commands.json is missing." >&2
    echo "Run \`cmake --preset default\` first — every preset exports the" >&2
    echo "compilation database (CMAKE_EXPORT_COMPILE_COMMANDS=ON) that the" >&2
    echo "analyzer's clang front-end and clang tooling consume." >&2
    exit 1
  fi
  python3 tools/ecrs_analyze --root . \
    --compdb build/compile_commands.json src
  python3 tests/analyze_corpus/run_corpus.py
}

case "${1:-}" in
  --format)
    format_check
    exit 0
    ;;
  --lint)
    lint_stage
    exit 0
    ;;
  --analyze)
    analyze_stage
    exit 0
    ;;
esac

echo "== stage 1/5: plain build + ctest =="
cmake --preset default >/dev/null
cmake --build --preset default -j "$JOBS"
ctest --preset default -j "$JOBS"

if [[ "${1:-}" == "--fast" ]]; then
  exit 0
fi

echo "== stage 2/5: static analysis =="
analyze_stage

echo "== stage 3/5: ASan+UBSan build + ctest =="
cmake --preset sanitize >/dev/null
cmake --build --preset sanitize -j "$JOBS"
ctest --preset sanitize -j "$JOBS"

echo "== stage 4/5: TSan build + concurrency suite =="
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$JOBS"
# The stress harness iterates pool sizes {1, 2, hardware_concurrency}
# internally (tests/concurrency_stress_test.cc); the companion suites cover
# the parallel SSAM payment fan-out end to end. halt_on_error: any report
# fails the stage.
TSAN_OPTIONS="halt_on_error=1${TSAN_OPTIONS:+ $TSAN_OPTIONS}" \
  ctest --preset tsan -j "$JOBS" \
    -R 'concurrency_stress_test|common_test|ssam_test|msoa_test|properties_test|audit_test'

echo "== stage 5/5: lint + format =="
lint_stage

echo "verify: all five stages green"
